package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"clustermarket/internal/invariant"
	"clustermarket/internal/resource"
	"clustermarket/internal/trace"
)

// smallConfig keeps test worlds fast while preserving the experiment
// structure.
func smallConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		Clusters:           8,
		MachinesPerCluster: 10,
		Teams:              30,
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{Clusters: 1, Teams: 5}); err == nil {
		t.Error("1 cluster accepted")
	}
	if _, err := NewWorld(Config{Clusters: 4, Teams: -1}); err == nil {
		t.Error("negative teams accepted")
	}
}

func TestNewWorldSkewedUtilization(t *testing.T) {
	w, err := NewWorld(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	util := w.Fleet.UtilizationVector(w.Reg)
	lo, hi := 1.0, 0.0
	for _, u := range util {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if hi < 0.7 {
		t.Errorf("no hot pools: max utilization %v", hi)
	}
	if lo > 0.4 {
		t.Errorf("no cold pools: min utilization %v", lo)
	}
}

func TestRunAuctionEndToEnd(t *testing.T) {
	w, err := NewWorld(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Record.Converged {
		t.Fatal("auction did not converge")
	}
	if out.Record.Submitted == 0 {
		t.Fatal("no orders submitted")
	}
	if len(out.Trades) == 0 {
		t.Fatal("no settled trades")
	}
	if w.LastPrices == nil {
		t.Fatal("LastPrices not recorded")
	}
	// The shared invariant kernel replaces the old one-off ledger check:
	// balances, commitments, capacity, and reserve floors too.
	invariant.RequireExchange(t, "after settlement", w.Exchange)
	// A second auction must run off the updated state.
	out2, err := w.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Record.Number != 2 {
		t.Errorf("second auction number = %d", out2.Record.Number)
	}
}

func TestFig2CurvesShape(t *testing.T) {
	curves := Fig2(100)
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 101 {
			t.Errorf("%s: %d points", c.Name, len(c.Points))
		}
		// All curves pass through 1.0 at 50% utilization.
		if p := c.Points[50]; p.Multiple < 0.999 || p.Multiple > 1.001 {
			t.Errorf("%s: multiple at 50%% = %v", c.Name, p.Multiple)
		}
	}
	var buf bytes.Buffer
	RenderFig2(&buf, curves)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig6CongestedPoolsPriceAboveFixed(t *testing.T) {
	d, err := Fig6(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8*3 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	hotMean, coldMean := d.CongestionPriceCorrelation(0.75, 0.4)
	// The paper's headline shape: congested pools settle above the former
	// fixed price, idle pools below it.
	if hotMean <= 1.0 {
		t.Errorf("hot pools mean ratio = %v, want > 1", hotMean)
	}
	if coldMean >= 1.0 {
		t.Errorf("cold pools mean ratio = %v, want < 1", coldMean)
	}
	if hotMean <= coldMean {
		t.Errorf("hot %v not above cold %v", hotMean, coldMean)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, d)
	for _, want := range []string{"Figure 6 (CPU)", "Figure 6 (RAM)", "Figure 6 (Disk)"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig7BidsLowOffersHigh(t *testing.T) {
	d, err := Fig7(smallConfig(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) < 4 {
		t.Fatalf("groups = %d", len(d.Groups))
	}
	// The paper's shape: "most bids were for resources in underutilized
	// clusters and most offers were for resources in overutilized
	// clusters". Compare medians dimension by dimension.
	for _, dim := range resource.StandardDimensions {
		buyMed, okBuy := d.MedianFor(dim, trace.Buy)
		sellMed, okSell := d.MedianFor(dim, trace.Sell)
		if !okBuy {
			t.Errorf("%s: no buy group", dim)
			continue
		}
		if !okSell {
			// Sellers may be absent in tiny worlds; skip the comparison.
			continue
		}
		if buyMed >= sellMed {
			t.Errorf("%s: bid median %v not below offer median %v", dim, buyMed, sellMed)
		}
	}
	var buf bytes.Buffer
	RenderFig7(&buf, d)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestTable1PremiumsDecline(t *testing.T) {
	rows, err := Table1(smallConfig(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Auction != i+1 {
			t.Errorf("row %d auction = %d", i, r.Auction)
		}
		if r.SettledPct <= 0 || r.SettledPct > 100 {
			t.Errorf("row %d settled = %v", i, r.SettledPct)
		}
		if r.Median < 0 || r.Mean < 0 {
			t.Errorf("row %d negative premium stats", i)
		}
	}
	// The paper's trend: the median premium decreases significantly as
	// bidders learn the market.
	if rows[2].Median >= rows[0].Median {
		t.Errorf("median premium did not decline: %v -> %v", rows[0].Median, rows[2].Median)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestScalingLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	d, err := Scaling(11, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.UserSweep) != 6 || len(d.ResourceSweep) != 6 {
		t.Fatalf("sweep sizes = %d, %d", len(d.UserSweep), len(d.ResourceSweep))
	}
	// Execution time grows with size and the growth is well-described by
	// a line (the Section III.C.4 claim). Wall-clock noise makes exact
	// slopes unstable, so only the coarse shape is asserted.
	if d.UserSweep[5].Seconds <= d.UserSweep[0].Seconds {
		t.Errorf("800 users (%vs) not slower than 25 (%vs)",
			d.UserSweep[5].Seconds, d.UserSweep[0].Seconds)
	}
	if d.UserFit.Slope <= 0 {
		t.Errorf("user fit slope = %v", d.UserFit.Slope)
	}
	if d.ResourceFit.Slope <= 0 {
		t.Errorf("resource fit slope = %v", d.ResourceFit.Slope)
	}
	var buf bytes.Buffer
	RenderScaling(&buf, d)
	if !strings.Contains(buf.String(), "Scaling in users") {
		t.Error("render missing title")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := Baseline(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d (3 baselines + market)", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Mechanism] = r
	}
	mkt, ok := byName["market (clock auction)"]
	if !ok {
		t.Fatal("market row missing")
	}
	fixed, ok := byName["fixed-price-fcfs"]
	if !ok {
		t.Fatal("fixed-price row missing")
	}
	// The market should not be worse on utilization balance than the
	// fixed-price regime (the paper's central claim: fewer shortages and
	// surpluses, more even utilization).
	if mkt.UtilSpread > fixed.UtilSpread*1.05 {
		t.Errorf("market spread %v worse than fixed-price %v", mkt.UtilSpread, fixed.UtilSpread)
	}
	var buf bytes.Buffer
	RenderBaseline(&buf, rows)
	if !strings.Contains(buf.String(), "Allocation mechanism comparison") {
		t.Error("render missing title")
	}
}

func TestMigrationTowardColdPools(t *testing.T) {
	rows, err := Migration(smallConfig(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Bought capacity must land predominantly in cold pools — the
	// utilization-weighted reserves make hot pools expensive.
	for _, r := range rows {
		if r.ColdShare <= r.HotShare {
			t.Errorf("auction %d: cold share %v not above hot share %v",
				r.Auction, r.ColdShare, r.HotShare)
		}
	}
	var buf bytes.Buffer
	RenderMigration(&buf, rows)
	if !strings.Contains(buf.String(), "Demand migration") {
		t.Error("render missing title")
	}
}

func TestSyntheticMarketShape(t *testing.T) {
	reg, bids := SyntheticMarket(newRand(1), 50, 20)
	if reg.Len() != 20 {
		t.Errorf("registry = %d pools", reg.Len())
	}
	if len(bids) != 51 {
		t.Errorf("bids = %d", len(bids))
	}
	for _, b := range bids[:50] {
		if err := b.Validate(reg.Len()); err != nil {
			t.Errorf("invalid bid: %v", err)
		}
	}
	// Last bid is the operator's supply.
	if bids[50].Bundles[0].PureDirection() != -1 {
		t.Error("operator bid is not a pure offer")
	}
}

func TestSortedPoolIndices(t *testing.T) {
	reg := resource.NewStandardRegistry("b", "a")
	idx := sortedPoolIndices(reg)
	if reg.Pool(idx[0]).Cluster != "a" {
		t.Errorf("first pool = %v", reg.Pool(idx[0]))
	}
	if reg.Pool(idx[len(idx)-1]).Cluster != "b" {
		t.Errorf("last pool = %v", reg.Pool(idx[len(idx)-1]))
	}
}

// newRand is a helper for tests needing an explicit source.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestClockProgression(t *testing.T) {
	d, err := ClockProgression(smallConfig(13), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds < 2 {
		t.Fatalf("rounds = %d, expected a multi-round clock", d.Rounds)
	}
	if len(d.Series) != 4 { // top 3 + least-moved
		t.Fatalf("series = %d", len(d.Series))
	}
	for _, s := range d.Series {
		if len(s.Prices) != d.Rounds {
			t.Errorf("%v trajectory has %d points for %d rounds", s.Pool, len(s.Prices), d.Rounds)
		}
		// Prices never decrease along a trajectory.
		for i := 1; i < len(s.Prices); i++ {
			if s.Prices[i] < s.Prices[i-1] {
				t.Fatalf("%v price decreased at round %d", s.Pool, i)
			}
		}
	}
	// The most-contested pool moved strictly more than the least.
	first := d.Series[0]
	last := d.Series[len(d.Series)-1]
	moveOf := func(s ClockSeries) float64 { return s.Prices[len(s.Prices)-1] - s.Prices[0] }
	if moveOf(first) <= moveOf(last) {
		t.Errorf("contested pool moved %v, uncontested %v", moveOf(first), moveOf(last))
	}
	// Excess demand ends no higher than it starts.
	if d.Excess[len(d.Excess)-1] > d.Excess[0] {
		t.Errorf("excess demand grew: %v -> %v", d.Excess[0], d.Excess[len(d.Excess)-1])
	}
	var buf bytes.Buffer
	RenderClockProgression(&buf, d)
	if !strings.Contains(buf.String(), "Clock progression") {
		t.Error("render missing title")
	}
}
