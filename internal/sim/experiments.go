package sim

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"clustermarket/internal/baseline"
	"clustermarket/internal/chart"
	"clustermarket/internal/core"
	"clustermarket/internal/market"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
	"clustermarket/internal/trace"
)

// ---------------------------------------------------------------------
// FIG2 — utilization-weighted pricing curves (Figure 2).
// ---------------------------------------------------------------------

// Fig2Curve is one named weighting-function series.
type Fig2Curve struct {
	Name   string
	Points []reserve.CurvePoint
}

// Fig2 samples the paper's three example weighting curves.
func Fig2(samples int) []Fig2Curve {
	return []Fig2Curve{
		{Name: "phi1(x) = exp(2(x-0.5))", Points: reserve.Curve(reserve.ExpSteep, samples)},
		{Name: "phi2(x) = exp(x-0.5)", Points: reserve.Curve(reserve.ExpMild, samples)},
		{Name: "phi3(x) = 1/(1.5-x)", Points: reserve.Curve(reserve.Hyperbolic, samples)},
	}
}

// RenderFig2 writes the Figure 2 line plot.
func RenderFig2(w io.Writer, curves []Fig2Curve) {
	series := make([]chart.Series, 0, len(curves))
	for _, c := range curves {
		s := chart.Series{Name: c.Name}
		for _, p := range c.Points {
			s.X = append(s.X, p.Utilization)
			s.Y = append(s.Y, p.Multiple)
		}
		series = append(series, s)
	}
	fmt.Fprint(w, chart.LinePlot(
		"Figure 2: utilization-weighted pricing curves (x: utilization %, y: price multiple)",
		72, 20, series...))
}

// ---------------------------------------------------------------------
// FIG6 — change in resource prices after auction (Figure 6).
// ---------------------------------------------------------------------

// Fig6Row is the settlement price of one pool as a multiple of the former
// fixed price.
type Fig6Row struct {
	Cluster        string
	Dim            resource.Dimension
	Ratio          float64
	PreUtilization float64
}

// Fig6Data holds the full figure plus the world it came from.
type Fig6Data struct {
	Rows    []Fig6Row
	Outcome *AuctionOutcome
}

// Fig6 builds a fresh world, runs the first market auction, and reports
// every pool's settlement price as a ratio over the former fixed price.
func Fig6(cfg Config) (*Fig6Data, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	out, err := w.RunAuction()
	if err != nil {
		return nil, err
	}
	d := &Fig6Data{Outcome: out}
	for i := 0; i < w.Reg.Len(); i++ {
		p := w.Reg.Pool(i)
		if p.Dim == resource.Network {
			continue
		}
		d.Rows = append(d.Rows, Fig6Row{
			Cluster:        p.Cluster,
			Dim:            p.Dim,
			Ratio:          out.Record.Prices[i] / w.FixedPrices[i],
			PreUtilization: out.PreUtilization[i],
		})
	}
	return d, nil
}

// CongestionPriceCorrelation returns the correlation evidence behind the
// figure: mean ratio over congested pools (ψ ≥ hot) and idle pools
// (ψ ≤ cold).
func (d *Fig6Data) CongestionPriceCorrelation(hot, cold float64) (hotMean, coldMean float64) {
	var hots, colds []float64
	for _, r := range d.Rows {
		switch {
		case r.PreUtilization >= hot:
			hots = append(hots, r.Ratio)
		case r.PreUtilization <= cold:
			colds = append(colds, r.Ratio)
		}
	}
	return stats.Mean(hots), stats.Mean(colds)
}

// RenderFig6 writes a grouped bar chart of price ratios per cluster.
func RenderFig6(w io.Writer, d *Fig6Data) {
	byDim := map[resource.Dimension][]chart.Bar{}
	for _, r := range d.Rows {
		byDim[r.Dim] = append(byDim[r.Dim], chart.Bar{
			Label: fmt.Sprintf("%s (psi=%.0f%%)", r.Cluster, 100*r.PreUtilization),
			Value: r.Ratio,
		})
	}
	for _, dim := range resource.StandardDimensions {
		fmt.Fprint(w, chart.BarChart(
			fmt.Sprintf("Figure 6 (%s): market price / former fixed price, '|' marks 1.0", dim),
			48, 1.0, byDim[dim]))
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// FIG7 — utilization percentiles of settled transactions (Figure 7).
// ---------------------------------------------------------------------

// Fig7Group is one boxplot column: a dimension × side combination.
type Fig7Group struct {
	Dim         resource.Dimension
	Side        trace.Side
	Percentiles []float64
	Box         stats.Boxplot
}

// Fig7Data carries the six groups of the figure.
type Fig7Data struct {
	Groups []Fig7Group
}

// Fig7 runs `auctions` sequential market auctions on a fresh world and
// computes, for every settled trade and dimension, the utilization
// percentile (among same-dimension pools, pre-auction) of the pool where
// the trade landed — bids and offers separately, as in Figure 7.
func Fig7(cfg Config, auctions int) (*Fig7Data, error) {
	if auctions < 1 {
		auctions = 1
	}
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	perc := map[resource.Dimension]map[trace.Side][]float64{}
	for _, dim := range resource.StandardDimensions {
		perc[dim] = map[trace.Side][]float64{}
	}
	for a := 0; a < auctions; a++ {
		out, err := w.RunAuction()
		if err != nil {
			return nil, err
		}
		// Population per dimension: utilization of same-dimension pools.
		pop := map[resource.Dimension][]float64{}
		for i := 0; i < w.Reg.Len(); i++ {
			p := w.Reg.Pool(i)
			pop[p.Dim] = append(pop[p.Dim], out.PreUtilization[i])
		}
		for _, tr := range out.Trades {
			for _, pi := range sortedPoolQtyIndices(tr.PoolQty) {
				q := tr.PoolQty[pi]
				p := w.Reg.Pool(pi)
				if p.Dim == resource.Network {
					continue
				}
				rank := stats.PercentileRank(pop[p.Dim], out.PreUtilization[pi])
				side := trace.Buy
				if q < 0 {
					side = trace.Sell
				}
				perc[p.Dim][side] = append(perc[p.Dim][side], rank)
			}
		}
	}
	d := &Fig7Data{}
	for _, dim := range resource.StandardDimensions {
		for _, side := range []trace.Side{trace.Buy, trace.Sell} {
			vals := perc[dim][side]
			if len(vals) == 0 {
				continue
			}
			box, err := stats.NewBoxplot(vals)
			if err != nil {
				return nil, err
			}
			d.Groups = append(d.Groups, Fig7Group{Dim: dim, Side: side, Percentiles: vals, Box: box})
		}
	}
	return d, nil
}

// MedianFor returns the median percentile of one group, with ok=false
// when the group is missing.
func (d *Fig7Data) MedianFor(dim resource.Dimension, side trace.Side) (float64, bool) {
	for _, g := range d.Groups {
		if g.Dim == dim && g.Side == side {
			return g.Box.Median, true
		}
	}
	return 0, false
}

// RenderFig7 writes the boxplot panel.
func RenderFig7(w io.Writer, d *Fig7Data) {
	groups := make([]chart.BoxGroup, 0, len(d.Groups))
	for _, g := range d.Groups {
		label := fmt.Sprintf("%s %ss", g.Dim, g.Side)
		groups = append(groups, chart.BoxGroup{Label: label, Box: g.Box})
	}
	fmt.Fprint(w, chart.BoxplotChart(
		"Figure 7: utilization percentiles of resources in settled transactions",
		24, 0, 100, groups))
}

// ---------------------------------------------------------------------
// TAB1 — bid premium statistics (Table I).
// ---------------------------------------------------------------------

// Table1Row mirrors one row of Table I.
type Table1Row struct {
	Auction    int
	Median     float64
	Mean       float64
	SettledPct float64
}

// Table1 runs `auctions` sequential auctions and reports the γ_u premium
// statistics per auction.
func Table1(cfg Config, auctions int) ([]Table1Row, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for a := 0; a < auctions; a++ {
		out, err := w.RunAuction()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Auction:    out.Record.Number,
			Median:     out.Record.PremiumMedian(),
			Mean:       out.Record.PremiumMean(),
			SettledPct: 100 * out.Record.SettledFraction(),
		})
	}
	return rows, nil
}

// RenderTable1 writes the table in the paper's format.
func RenderTable1(w io.Writer, rows []Table1Row) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Auction),
			fmt.Sprintf("%.4f", r.Median),
			fmt.Sprintf("%.4f", r.Mean),
			fmt.Sprintf("%.1f%%", r.SettledPct),
		})
	}
	fmt.Fprint(w, chart.Table("Table I: bid premium statistics",
		[]string{"Auction", "Median of gamma_u", "Mean of gamma_u", "% Settled"}, cells))
}

// ---------------------------------------------------------------------
// SCALE — runtime scaling of the clock auction (Section III.C.4).
// ---------------------------------------------------------------------

// ScalingPoint is one measured auction size.
type ScalingPoint struct {
	Users     int
	Resources int
	// Seconds is the wall-clock time of one full auction run.
	Seconds float64
	Rounds  int
}

// ScalingData carries both sweeps and their linear fits.
type ScalingData struct {
	UserSweep     []ScalingPoint
	ResourceSweep []ScalingPoint
	UserFit       stats.LinearFit
	ResourceFit   stats.LinearFit
}

// SyntheticMarket builds a random pure-buyer market with one operator
// seller over nPools single-dimension pools, for controlled scaling runs.
func SyntheticMarket(rng *rand.Rand, nUsers, nPools int) (*resource.Registry, []*core.Bid) {
	reg := resource.NewRegistry()
	for i := 0; i < nPools; i++ {
		reg.Add(resource.Pool{Cluster: fmt.Sprintf("c%d", i), Dim: resource.CPU})
	}
	supply := reg.Zero()
	bids := make([]*core.Bid, 0, nUsers+1)
	for u := 0; u < nUsers; u++ {
		nAlt := rng.Intn(3) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		for a := 0; a < nAlt; a++ {
			v := reg.Zero()
			v[rng.Intn(nPools)] = float64(rng.Intn(20) + 1)
			bundles = append(bundles, v)
		}
		bids = append(bids, &core.Bid{
			User:    fmt.Sprintf("u%d", u),
			Bundles: bundles,
			Limit:   float64(rng.Intn(150) + 25),
		})
	}
	for _, b := range bids {
		supply.AddInto(b.Bundles[0])
	}
	for i := range supply {
		supply[i] = -supply[i] / 2
	}
	bids = append(bids, &core.Bid{User: "op", Limit: -0.001, Bundles: []resource.Vector{supply}})
	return reg, bids
}

// scalingRounds fixes the clock length for scaling measurements so every
// point does identical rounds: total auction length depends on prices,
// not size, while the paper's linearity claim is about the work done per
// round (one proxy sweep over U users × R pools). The count is large
// because sparse proxy evaluation made rounds cheap enough that short
// clocks drown in scheduler noise.
const scalingRounds = 500

// scalingReps repeats each measurement, keeping the minimum (standard
// micro-benchmark practice to shed GC and scheduler interference).
const scalingReps = 3

// timeAuction runs one synthetic auction for exactly scalingRounds rounds
// (buyer limits are made effectively unbounded, so demand never clears)
// and reports its wall time.
func timeAuction(seed int64, users, pools int, parallel bool) (ScalingPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	reg, bids := SyntheticMarket(rng, users, pools)
	for _, b := range bids {
		if b.Class() == core.PureBuyer {
			b.Limit = 1e15
		}
	}
	start := reg.Zero()
	for i := range start {
		start[i] = 0.5
	}
	point := ScalingPoint{Users: users, Resources: pools}
	for rep := 0; rep < scalingReps; rep++ {
		a, err := core.NewAuction(reg, bids, core.Config{
			Start:     start.Clone(),
			Policy:    core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
			MaxRounds: scalingRounds,
			Parallel:  parallel,
		})
		if err != nil {
			return ScalingPoint{}, err
		}
		t0 := time.Now()
		res, err := a.Run()
		if err != nil && !errors.Is(err, core.ErrNoConvergence) {
			return ScalingPoint{}, err
		}
		elapsed := time.Since(t0).Seconds()
		if rep == 0 || elapsed < point.Seconds {
			point.Seconds = elapsed
		}
		point.Rounds = res.Rounds
	}
	return point, nil
}

// Scaling sweeps user count (at fixed 100 pools) and pool count (at fixed
// 100 users) and fits lines, verifying the paper's linear-scaling claim.
func Scaling(seed int64, parallel bool) (*ScalingData, error) {
	d := &ScalingData{}
	for _, u := range []int{25, 50, 100, 200, 400, 800} {
		p, err := timeAuction(seed, u, 100, parallel)
		if err != nil {
			return nil, err
		}
		d.UserSweep = append(d.UserSweep, p)
	}
	for _, r := range []int{12, 25, 50, 100, 200, 384} {
		p, err := timeAuction(seed, 100, r, parallel)
		if err != nil {
			return nil, err
		}
		d.ResourceSweep = append(d.ResourceSweep, p)
	}
	var xs, ys []float64
	for _, p := range d.UserSweep {
		xs = append(xs, float64(p.Users))
		ys = append(ys, p.Seconds)
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	d.UserFit = fit
	xs, ys = nil, nil
	for _, p := range d.ResourceSweep {
		xs = append(xs, float64(p.Resources))
		ys = append(ys, p.Seconds)
	}
	fit, err = stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	d.ResourceFit = fit
	return d, nil
}

// RenderScaling writes the two sweeps and their fits.
func RenderScaling(w io.Writer, d *ScalingData) {
	var cells [][]string
	for _, p := range d.UserSweep {
		cells = append(cells, []string{
			fmt.Sprintf("%d", p.Users), fmt.Sprintf("%d", p.Resources),
			fmt.Sprintf("%.4f", p.Seconds), fmt.Sprintf("%d", p.Rounds),
		})
	}
	fmt.Fprint(w, chart.Table("Scaling in users (R=100)",
		[]string{"Users", "Pools", "Seconds", "Rounds"}, cells))
	fmt.Fprintf(w, "linear fit: %.3g s/user, R^2 = %.3f\n\n", d.UserFit.Slope, d.UserFit.R2)

	cells = nil
	for _, p := range d.ResourceSweep {
		cells = append(cells, []string{
			fmt.Sprintf("%d", p.Users), fmt.Sprintf("%d", p.Resources),
			fmt.Sprintf("%.4f", p.Seconds), fmt.Sprintf("%d", p.Rounds),
		})
	}
	fmt.Fprint(w, chart.Table("Scaling in resource pools (U=100)",
		[]string{"Users", "Pools", "Seconds", "Rounds"}, cells))
	fmt.Fprintf(w, "linear fit: %.3g s/pool, R^2 = %.3f\n", d.ResourceFit.Slope, d.ResourceFit.R2)
}

// ---------------------------------------------------------------------
// BASE — market vs traditional allocators (Section I / Abstract).
// ---------------------------------------------------------------------

// BaselineRow compares one mechanism's shortage, surplus, and utilization
// imbalance.
type BaselineRow struct {
	Mechanism  string
	Shortage   float64
	Surplus    float64
	UtilSpread float64
	SettledPct float64
}

// Baseline builds one world, extracts its buy-side demand, and serves it
// through each traditional allocator and through the market, reporting
// shortage/surplus/imbalance for each.
func Baseline(cfg Config) ([]BaselineRow, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	// Capacity the operator can hand out: marketable free capacity.
	capacity := w.Fleet.FreeVector(w.Reg).Scale(0.8)

	// Generate the same bid population the market would see.
	util := w.Fleet.UtilizationVector(w.Reg)
	gbs, err := w.Gen.Generate(trace.RoundInput{
		Utilization:     util,
		ReferencePrices: w.FixedPrices,
	})
	if err != nil {
		return nil, err
	}
	// Traditional mechanisms only see the rigid home-cluster request
	// (first bundle) — no substitution, no prices.
	var reqs []baseline.Request
	for _, gb := range gbs {
		if gb.Side != trace.Buy {
			continue
		}
		reqs = append(reqs, baseline.Request{
			Team:     gb.Team.Name,
			Demand:   gb.Bid.Bundles[0].PositivePart(),
			Priority: gb.Team.Budget,
		})
	}
	var rows []BaselineRow
	for _, alloc := range baseline.Allocators() {
		o, err := alloc.Allocate(capacity, reqs)
		if err != nil {
			return nil, err
		}
		served := 0
		for _, a := range o.Allocations {
			if a != nil && !a.IsZero() {
				served++
			}
		}
		rows = append(rows, BaselineRow{
			Mechanism:  alloc.Name(),
			Shortage:   o.ShortageRate(),
			Surplus:    o.SurplusRate(),
			UtilSpread: o.UtilizationSpread(),
			SettledPct: 100 * float64(served) / float64(len(reqs)),
		})
	}

	// The market serves the same world (rebuilt so the bid RNG stream
	// matches) through the clock auction.
	w2, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	out, err := w2.RunAuction()
	if err != nil {
		return nil, err
	}
	rows = append(rows, marketBaselineRow(w2, out))
	return rows, nil
}

// marketBaselineRow derives shortage/surplus/imbalance from a settled
// market auction, using the same accounting as the baseline Outcome: the
// supply side is the operator's marketable free capacity at auction time
// plus what teams sold; the demand side is the buy orders.
func marketBaselineRow(w *World, out *AuctionOutcome) BaselineRow {
	r := w.Reg.Len()
	bought := make(resource.Vector, r)
	teamSold := make(resource.Vector, r)
	unmet := make(resource.Vector, r)
	buyOrders, buyWins := 0, 0
	for _, o := range w.Exchange.Orders() {
		if o.Status == market.Won && o.Allocation != nil {
			teamSold.AddInto(o.Allocation.NegativePart().Neg())
		}
		if o.Side() <= 0 {
			continue
		}
		buyOrders++
		if o.Status == market.Won {
			buyWins++
			bought.AddInto(o.Allocation.PositivePart())
			continue
		}
		unmet.AddInto(o.Bid.Bundles[0].PositivePart())
	}
	// Marketable operator supply as of the pre-auction snapshot.
	capacity := w.Fleet.CapacityVector(w.Reg)
	supply := make(resource.Vector, r)
	for i := range supply {
		supply[i] = capacity[i]*(1-out.PreUtilization[i])*0.8 + teamSold[i]
	}

	totalDemand := bought.Sum() + unmet.Sum()
	shortage := 0.0
	if totalDemand > 0 {
		shortage = unmet.Sum() / totalDemand
	}
	surplus := 0.0
	if s := supply.Sum(); s > 0 {
		surplus = math.Max(0, supply.Sum()-bought.Sum()) / s
	}
	// Post-trade utilization spread across pools.
	spread := stats.CoefficientOfVariation(w.Fleet.UtilizationVector(w.Reg))
	settledPct := 0.0
	if buyOrders > 0 {
		settledPct = 100 * float64(buyWins) / float64(buyOrders)
	}
	return BaselineRow{
		Mechanism:  "market (clock auction)",
		Shortage:   shortage,
		Surplus:    surplus,
		UtilSpread: spread,
		SettledPct: settledPct,
	}
}

// RenderBaseline writes the comparison table.
func RenderBaseline(w io.Writer, rows []BaselineRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mechanism,
			fmt.Sprintf("%.1f%%", 100*r.Shortage),
			fmt.Sprintf("%.1f%%", 100*r.Surplus),
			fmt.Sprintf("%.3f", r.UtilSpread),
			fmt.Sprintf("%.1f%%", r.SettledPct),
		})
	}
	fmt.Fprint(w, chart.Table("Allocation mechanism comparison",
		[]string{"Mechanism", "Shortage", "Surplus", "Util spread (CV)", "Requests served"}, cells))
}

// ---------------------------------------------------------------------
// MIGR — demand migration across auctions (Section V.B).
// ---------------------------------------------------------------------

// MigrationRow tracks where bought capacity landed in one auction.
type MigrationRow struct {
	Auction int
	// ColdShare and HotShare split the bought quantity by the
	// pre-auction utilization of the destination pool (≤50% vs ≥80%).
	ColdShare, HotShare float64
	// UtilSpread is the post-auction coefficient of variation of pool
	// utilizations; migration should push it down.
	UtilSpread float64
	// Movers counts winning buy trades that landed outside the team's
	// previous home cluster.
	Movers int
}

// Migration runs sequential auctions and reports the demand-shift
// pattern.
func Migration(cfg Config, auctions int) ([]MigrationRow, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	homes := make(map[string]string)
	for _, tm := range w.Gen.Teams() {
		homes[tm.Name] = tm.Home
	}
	var rows []MigrationRow
	for a := 0; a < auctions; a++ {
		out, err := w.RunAuction()
		if err != nil {
			return nil, err
		}
		var cold, hot, total float64
		movers := 0
		for _, tr := range out.Trades {
			movedTo := ""
			// Pool indices are visited in sorted order, not map order:
			// cold/hot/total are float accumulations, and same-seed runs
			// must produce bit-identical rows.
			for _, pi := range sortedPoolQtyIndices(tr.PoolQty) {
				q := tr.PoolQty[pi]
				if q <= 0 {
					continue
				}
				total += q
				u := out.PreUtilization[pi]
				if u <= 0.5 {
					cold += q
				}
				if u >= 0.8 {
					hot += q
				}
				movedTo = w.Reg.Pool(pi).Cluster
			}
			if tr.Side == trace.Buy && movedTo != "" && movedTo != homes[tr.Team] {
				movers++
			}
		}
		for _, tm := range w.Gen.Teams() {
			homes[tm.Name] = tm.Home
		}
		row := MigrationRow{Auction: out.Record.Number, Movers: movers}
		if total > 0 {
			row.ColdShare = cold / total
			row.HotShare = hot / total
		}
		utils := w.Fleet.UtilizationVector(w.Reg)
		row.UtilSpread = stats.CoefficientOfVariation(utils)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMigration writes the migration table.
func RenderMigration(w io.Writer, rows []MigrationRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Auction),
			fmt.Sprintf("%.1f%%", 100*r.ColdShare),
			fmt.Sprintf("%.1f%%", 100*r.HotShare),
			fmt.Sprintf("%d", r.Movers),
			fmt.Sprintf("%.3f", r.UtilSpread),
		})
	}
	fmt.Fprint(w, chart.Table("Demand migration across auctions",
		[]string{"Auction", "Bought in cold pools", "Bought in hot pools", "Teams moved", "Util spread (CV)"}, cells))
}

// sortedPoolQtyIndices returns a trade's pool indices in ascending order,
// so accumulations over the PoolQty map are order-stable.
func sortedPoolQtyIndices(pq map[int]float64) []int {
	idx := make([]int, 0, len(pq))
	for pi := range pq {
		idx = append(idx, pi)
	}
	sort.Ints(idx)
	return idx
}

// sortedPoolIndices returns pool indices sorted by cluster then dimension
// (shared helper for deterministic iteration in reports).
func sortedPoolIndices(reg *resource.Registry) []int {
	idx := make([]int, reg.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := reg.Pool(idx[a]), reg.Pool(idx[b])
		if pa.Cluster != pb.Cluster {
			return pa.Cluster < pb.Cluster
		}
		return pa.Dim < pb.Dim
	})
	return idx
}
