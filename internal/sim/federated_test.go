package sim

import (
	"reflect"
	"testing"

	"clustermarket/internal/invariant"
)

// TestFederatedMigration checks the scenario's headline shape: the
// price board routes essentially all migratable demand into the cold
// region, the hot region stays priced above the cold one, and the cold
// region's prices rise as placed demand warms it up.
func TestFederatedMigration(t *testing.T) {
	rows, fed, err := FederatedMigration(FederatedConfig{Seed: 11, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	totalWon := 0
	for _, r := range rows {
		totalWon += r.Won
		if r.Won > 0 && r.ColdShare < 0.9 {
			t.Errorf("epoch %d: cold share %.2f, want ≥ 0.9 (demand not migrating)", r.Epoch, r.ColdShare)
		}
		if r.HotCPUPrice <= r.ColdCPUPrice {
			t.Errorf("epoch %d: hot CPU price %.3f not above cold %.3f", r.Epoch, r.HotCPUPrice, r.ColdCPUPrice)
		}
	}
	if totalWon == 0 {
		t.Fatal("no cross-region orders won; scenario degenerate")
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.ColdCPUPrice <= first.ColdCPUPrice {
		t.Errorf("cold CPU price did not rise with inbound demand: %.4f → %.4f",
			first.ColdCPUPrice, last.ColdCPUPrice)
	}
	// The cold region's fleet really absorbed the placed load.
	coldUtil := fed.Region("cold").Exchange().Fleet().Cluster("cold-r1").Utilization()
	if coldUtil.CPU <= 0.12 {
		t.Errorf("cold-r1 CPU utilization %.3f did not grow", coldUtil.CPU)
	}
	// The full shared kernel, not just the ledger sum: balances, capacity,
	// reserve floors, and XOR leg coordination must all survive the run.
	invariant.RequireFederation(t, "after migration", fed)
}

// TestFederatedMigrationDeterministic pins the reproducibility contract:
// two runs from the same seed produce bit-identical rows. This is the
// regression test for the map-iteration nondeterminism that used to hide
// in placeFederatedWin (placement order changed bin-packing, hence
// utilization, hence prices) and in the federation's advanceRegion
// (failover submission order changed order IDs and budget outcomes).
func TestFederatedMigrationDeterministic(t *testing.T) {
	run := func() []FederatedRow {
		rows, _, err := FederatedMigration(FederatedConfig{Seed: 23, Epochs: 4})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}
