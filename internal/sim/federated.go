package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

// FederatedConfig parameterizes the federated migration scenario: a hot
// region and a cold region behind one Federation, with teams submitting
// cross-region XOR bids ("workers in hot or cold") that the router
// steers by price.
type FederatedConfig struct {
	Seed               int64
	ClustersPerRegion  int // default 2
	MachinesPerCluster int // default 20
	Teams              int // default 20
	Epochs             int // default 5
}

func (c *FederatedConfig) applyDefaults() {
	if c.ClustersPerRegion == 0 {
		c.ClustersPerRegion = 2
	}
	if c.MachinesPerCluster == 0 {
		c.MachinesPerCluster = 20
	}
	if c.Teams == 0 {
		c.Teams = 20
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
}

// FederatedRow is one epoch of the federated scenario: the two regions'
// CPU price levels and where the routable demand actually landed.
type FederatedRow struct {
	Epoch int
	// HotCPUPrice and ColdCPUPrice are each region's mean CPU price —
	// clearing prices once the region has settled an auction, reserve
	// prices before.
	HotCPUPrice, ColdCPUPrice float64
	// ColdShare is the fraction of cross-region orders won this epoch
	// that landed in the cold region — the migration the paper's
	// substitution bundles are meant to produce.
	ColdShare float64
	// Won and Lost count terminal cross-region orders this epoch.
	Won, Lost int
}

// FederatedMigration builds a hot+cold federated market and runs it for
// cfg.Epochs settlement waves. Each epoch every team submits a
// cross-region XOR bid priced to be affordable in the cold region but
// not the hot one, plus occasional hot-local bids from incumbents; won
// load is placed onto the winning region's clusters, so the cold region
// visibly warms — and its prices rise — as demand migrates into it.
func FederatedMigration(cfg FederatedConfig) ([]FederatedRow, *federation.Federation, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	build := func(name string, util float64) (*federation.Region, error) {
		fleet := cluster.NewFleet()
		for i := 1; i <= cfg.ClustersPerRegion; i++ {
			cn := fmt.Sprintf("%s-r%d", name, i)
			c := cluster.New(cn, nil)
			c.UnitCost = cluster.Usage{CPU: FixedPriceCPU, RAM: FixedPriceRAM, Disk: FixedPriceDisk}
			c.AddMachines(cfg.MachinesPerCluster, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
			if err := fleet.AddCluster(c); err != nil {
				return nil, err
			}
			if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
				return nil, err
			}
		}
		return federation.NewRegion(name, fleet, market.Config{InitialBudget: 1e6})
	}
	hot, err := build("hot", 0.85)
	if err != nil {
		return nil, nil, err
	}
	cold, err := build("cold", 0.12)
	if err != nil {
		return nil, nil, err
	}
	fed, err := federation.NewFederation(hot, cold)
	if err != nil {
		return nil, nil, err
	}
	teams := make([]string, cfg.Teams)
	for i := range teams {
		teams[i] = fmt.Sprintf("t%d", i)
		if err := fed.OpenAccount(teams[i]); err != nil {
			return nil, nil, err
		}
	}

	// batch-compute fixed cost per worker at the operator's real unit
	// costs; limits are set relative to it so a bid clears the cold
	// region's discounted reserve but not the hot region's premium.
	product, err := fed.Catalog().Lookup("batch-compute")
	if err != nil {
		return nil, nil, err
	}
	unitCost := product.PerUnit.CPU*FixedPriceCPU +
		product.PerUnit.RAM*FixedPriceRAM +
		product.PerUnit.Disk*FixedPriceDisk

	var rows []FederatedRow
	crossOrders := make(map[int]bool) // fed order ID → cross-region
	settled := make(map[int]bool)     // fed order ID → already counted/placed
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, team := range teams {
			qty := 1 + rng.Float64()*2
			hc := fmt.Sprintf("hot-r%d", 1+rng.Intn(cfg.ClustersPerRegion))
			cc := fmt.Sprintf("cold-r%d", 1+rng.Intn(cfg.ClustersPerRegion))
			if rng.Float64() < 0.25 {
				// A hot-region incumbent willing to pay the congestion
				// premium keeps the hot market alive.
				limit := 3 * unitCost * qty
				if _, err := fed.SubmitProduct(team, "batch-compute", qty, []string{hc}, limit); err != nil {
					return nil, nil, err
				}
				continue
			}
			// The migratable workload: either region acceptable, priced
			// for the cold one.
			limit := 1.5 * unitCost * qty
			fo, err := fed.SubmitProduct(team, "batch-compute", qty, []string{hc, cc}, limit)
			if err != nil {
				return nil, nil, err
			}
			crossOrders[fo.ID] = true
		}

		for _, tk := range fed.Tick() {
			// A non-convergent clock is a normal recoverable outcome: the
			// region's batch stays open for its next epoch.
			if tk.Err != nil && !errors.Is(tk.Err, core.ErrNoConvergence) {
				return nil, nil, fmt.Errorf("sim: epoch %d region %s: %w", epoch, tk.Region, tk.Err)
			}
		}

		row := FederatedRow{Epoch: epoch}
		var coldWon, crossWon float64
		for _, fo := range fed.Orders() {
			if settled[fo.ID] || (fo.Status != market.Won && fo.Status != market.Lost) {
				continue
			}
			settled[fo.ID] = true
			if fo.Status == market.Won {
				placeFederatedWin(fed, fo)
			}
			if !crossOrders[fo.ID] {
				continue
			}
			switch fo.Status {
			case market.Won:
				row.Won++
				crossWon++
				if fo.Region == "cold" {
					coldWon++
				}
			case market.Lost:
				row.Lost++
			}
		}
		if crossWon > 0 {
			row.ColdShare = coldWon / crossWon
		}
		row.HotCPUPrice = regionMeanCPUPrice(hot)
		row.ColdCPUPrice = regionMeanCPUPrice(cold)
		rows = append(rows, row)
	}
	return rows, fed, nil
}

// regionMeanCPUPrice averages the region's CPU pool prices: clearing
// prices once an auction has converged, reserve prices before.
func regionMeanCPUPrice(r *federation.Region) float64 {
	ex := r.Exchange()
	reg := ex.Registry()
	prices := ex.LastClearingPrices()
	if prices == nil {
		var err error
		prices, err = ex.ReservePrices()
		if err != nil {
			return 0
		}
	}
	idx := reg.DimensionPools(resource.CPU)
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		sum += prices[i]
	}
	return sum / float64(len(idx))
}

// placeFederatedWin reflects a won federated order onto the winning
// region's clusters as chunked tasks, so settled demand shows up in the
// region's utilization — and therefore in its future reserve prices.
// The shared placement helper visits clusters in sorted name order:
// placement is bin-packing, so the order tasks land decides which
// chunks fit, hence future utilization, hence future reserve prices —
// map-order iteration here used to make same-seed runs diverge.
func placeFederatedWin(fed *federation.Federation, fo *federation.FedOrder) {
	region := fed.Region(fo.Region)
	if region == nil {
		return
	}
	ex := region.Exchange()
	ex.Fleet().PlaceAllocationChunked(ex.Registry(), fo.Team, fo.Allocation, nil)
}
