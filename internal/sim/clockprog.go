package sim

import (
	"fmt"
	"io"
	"sort"

	"clustermarket/internal/chart"
	"clustermarket/internal/core"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/trace"
)

// ClockSeries is the price trajectory of one pool across clock rounds.
type ClockSeries struct {
	Pool   resource.Pool
	Prices []float64
}

// ClockProgressionData is the clock-progression figure: how the price
// clock of Figure 1 ascends round by round, fast where demand is heavy
// and not at all where supply suffices.
type ClockProgressionData struct {
	Rounds int
	// Series holds the trajectories of the most-moved pools plus one
	// unmoved pool for contrast.
	Series []ClockSeries
	// Excess holds total positive excess demand per round (the auction's
	// progress variable).
	Excess []float64
}

// ClockProgression builds a world, runs its first auction with history
// recording, and extracts price trajectories for the `top` pools with the
// largest total movement plus the least-moved pool.
func ClockProgression(cfg Config, top int) (*ClockProgressionData, error) {
	if top < 1 {
		top = 3
	}
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	// Replicate the world's first auction manually so we can pass
	// RecordHistory to the core auction (the exchange does not expose
	// it).
	util := w.Fleet.UtilizationVector(w.Reg)
	gbs, err := w.Gen.Generate(trace.RoundInput{
		Utilization:     util,
		ReferencePrices: w.FixedPrices,
	})
	if err != nil {
		return nil, err
	}
	bids := make([]*core.Bid, 0, len(gbs)+1)
	for _, gb := range gbs {
		bids = append(bids, gb.Bid)
	}
	// Operator supply, mirroring the exchange's construction but offering
	// a deliberately smaller marketable fraction: the figure's purpose is
	// to show the clock ascending under contention, which an
	// over-supplied market settles away in round one.
	free := w.Fleet.FreeVector(w.Reg)
	supply := w.Reg.Zero()
	for i, f := range free {
		if q := f * 0.25; q > 0 {
			supply[i] = -q
		}
	}
	bids = append(bids, &core.Bid{User: "operator", Limit: -0.000001, Bundles: []resource.Vector{supply}})

	pricer := reserve.NewPricer(w.Cfg.Weight)
	start, err := pricer.Prices(w.Reg, util, w.Fleet.CostVector(w.Reg))
	if err != nil {
		return nil, err
	}
	a, err := core.NewAuction(w.Reg, bids, core.Config{
		Start:         start,
		Policy:        w.Cfg.Policy,
		RecordHistory: true,
	})
	if err != nil {
		return nil, err
	}
	res, err := a.Run()
	if err != nil {
		return nil, err
	}

	d := &ClockProgressionData{Rounds: res.Rounds}
	for _, h := range res.History {
		d.Excess = append(d.Excess, h.ExcessDemand.PositivePart().Sum())
	}
	// Rank pools by total price movement.
	type move struct {
		pool  int
		delta float64
	}
	moves := make([]move, w.Reg.Len())
	last := res.History[len(res.History)-1].Prices
	for i := 0; i < w.Reg.Len(); i++ {
		moves[i] = move{pool: i, delta: last[i] - start[i]}
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].delta > moves[b].delta })

	pick := moves[:min(top, len(moves))]
	pick = append(pick, moves[len(moves)-1]) // least-moved pool for contrast
	for _, m := range pick {
		s := ClockSeries{Pool: w.Reg.Pool(m.pool)}
		for _, h := range res.History {
			s.Prices = append(s.Prices, h.Prices[m.pool])
		}
		d.Series = append(d.Series, s)
	}
	return d, nil
}

// RenderClockProgression writes the trajectory line plot.
func RenderClockProgression(w io.Writer, d *ClockProgressionData) {
	series := make([]chart.Series, 0, len(d.Series))
	for _, s := range d.Series {
		cs := chart.Series{Name: s.Pool.String()}
		for t, p := range s.Prices {
			cs.X = append(cs.X, float64(t))
			cs.Y = append(cs.Y, p)
		}
		series = append(series, cs)
	}
	fmt.Fprint(w, chart.LinePlot(
		fmt.Sprintf("Clock progression: price per round over %d rounds (most vs least contested pools)", d.Rounds),
		72, 20, series...))
	fmt.Fprintf(w, "total positive excess demand: first round %.1f, final round %.1f\n",
		d.Excess[0], d.Excess[len(d.Excess)-1])
}
