// Package reserve implements the congestion-weighted reserve pricing of
// Section IV: the operator sets the clock auction's starting price for each
// resource pool as p̃_r = φ_r(ψ(r))·c(r), where ψ(r) is the pool's current
// (pre-auction) utilization, c(r) its real cost, and φ_r a weighting
// function satisfying the five properties of Section IV.A. High reserve
// prices on congested pools push demand toward under-utilized pools.
package reserve

import (
	"errors"
	"fmt"
	"math"

	"clustermarket/internal/resource"
)

// WeightFn maps a normalized utilization in [0, 1] to a price multiple.
type WeightFn func(utilization float64) float64

// The three example weighting curves plotted in Figure 2 of the paper.
var (
	// ExpSteep is φ₁(x) = exp(2(x − 0.5)).
	ExpSteep WeightFn = func(x float64) float64 { return math.Exp(2 * (x - 0.5)) }
	// ExpMild is φ₂(x) = exp(x − 0.5).
	ExpMild WeightFn = func(x float64) float64 { return math.Exp(x - 0.5) }
	// Hyperbolic is φ₃(x) = 1/(1.5 − x).
	Hyperbolic WeightFn = func(x float64) float64 { return 1 / (1.5 - x) }
)

// Named returns the weighting function registered under name
// ("exp-steep", "exp-mild", or "hyperbolic").
func Named(name string) (WeightFn, error) {
	switch name {
	case "exp-steep", "phi1":
		return ExpSteep, nil
	case "exp-mild", "phi2":
		return ExpMild, nil
	case "hyperbolic", "phi3":
		return Hyperbolic, nil
	}
	return nil, fmt.Errorf("reserve: unknown weighting function %q", name)
}

// Power returns a polynomial weighting curve φ(x) = lo + (hi−lo)·xᵏ,
// useful for exploring alternatives to the paper's three curves.
func Power(lo, hi, k float64) WeightFn {
	return func(x float64) float64 {
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		return lo + (hi-lo)*math.Pow(x, k)
	}
}

// Properties reports how a weighting function fares against the five
// criteria of Section IV.A, evaluated on a dense grid.
type Properties struct {
	Monotonic          bool    // (1) non-decreasing on [0,1]
	AboveOneWhenOver   bool    // (2) φ > 1 for over-utilized pools (x > 0.5)
	AtMostOneWhenUnder bool    // (3) φ ≤ 1 for under-utilized pools (x ≤ 0.5)
	CongestionConvex   bool    // (4) slope at high utilization ≫ slope at low
	BoundedRatio       float64 // (5) k = φ(1)/φ(0)
}

// overUtilized is the normalized utilization above which a pool counts as
// over-utilized for properties (2) and (3). The paper pivots its curves at
// the midpoint (all three example curves cross 1.0 at x = 0.5).
const overUtilized = 0.5

// CheckProperties evaluates fn on a grid of n+1 points and reports the
// Section IV.A properties. n must be at least 4.
func CheckProperties(fn WeightFn, n int) (Properties, error) {
	if n < 4 {
		return Properties{}, errors.New("reserve: need at least 4 grid points")
	}
	p := Properties{Monotonic: true, AboveOneWhenOver: true, AtMostOneWhenUnder: true}
	prev := math.Inf(-1)
	const tol = 1e-9
	for i := 0; i <= n; i++ {
		x := float64(i) / float64(n)
		v := fn(x)
		if v < prev-tol {
			p.Monotonic = false
		}
		prev = v
		if x > overUtilized && v <= 1 {
			p.AboveOneWhenOver = false
		}
		if x <= overUtilized && v > 1+tol {
			p.AtMostOneWhenUnder = false
		}
	}
	// Property 4: the cost difference between 99% and 80% utilization must
	// significantly exceed the difference between 40% and 15%.
	highDiff := fn(0.99) - fn(0.80)
	lowDiff := fn(0.40) - fn(0.15)
	p.CongestionConvex = highDiff > lowDiff
	// Property 5: φ(100%) = k·φ(0%) for a finite constant k.
	if f0 := fn(0); f0 > 0 {
		p.BoundedRatio = fn(1) / f0
	} else {
		p.BoundedRatio = math.Inf(1)
	}
	return p, nil
}

// Satisfied reports whether all boolean properties hold and the ratio k is
// finite.
func (p Properties) Satisfied() bool {
	return p.Monotonic && p.AboveOneWhenOver && p.AtMostOneWhenUnder &&
		p.CongestionConvex && !math.IsInf(p.BoundedRatio, 0) && p.BoundedRatio > 1
}

// Pricer computes per-pool reserve prices from utilization and cost.
type Pricer struct {
	// Weight is the default weighting function applied to every pool.
	Weight WeightFn
	// PerDimension optionally overrides the weighting function for
	// specific dimensions (the paper allows φ_r to differ per pool).
	PerDimension map[resource.Dimension]WeightFn
	// Floor is a lower bound applied to every reserve price, keeping the
	// clock auction's starting point strictly positive.
	Floor float64
}

// NewPricer returns a Pricer with the given default weighting function and
// a small positive floor.
func NewPricer(fn WeightFn) *Pricer {
	return &Pricer{Weight: fn, Floor: 1e-6}
}

// weightFor picks the weighting function for pool p.
func (pr *Pricer) weightFor(p resource.Pool) WeightFn {
	if fn, ok := pr.PerDimension[p.Dim]; ok && fn != nil {
		return fn
	}
	return pr.Weight
}

// Price returns the reserve price p̃ = φ(ψ)·c for one pool, clamped to the
// floor. Utilization is clamped into [0, 1].
func (pr *Pricer) Price(p resource.Pool, utilization, cost float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	v := pr.weightFor(p)(utilization) * cost
	if v < pr.Floor {
		v = pr.Floor
	}
	return v
}

// Prices computes the full reserve price vector for a registry given
// per-pool utilizations ψ and costs c (both indexed like the registry).
func (pr *Pricer) Prices(reg *resource.Registry, utilization, cost resource.Vector) (resource.Vector, error) {
	if reg.Len() != len(utilization) || reg.Len() != len(cost) {
		return nil, fmt.Errorf("reserve: registry has %d pools, got %d utilizations and %d costs",
			reg.Len(), len(utilization), len(cost))
	}
	out := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		out[i] = pr.Price(reg.Pool(i), utilization[i], cost[i])
	}
	return out, nil
}

// CurvePoint is one sample of a weighting curve.
type CurvePoint struct {
	Utilization float64 // percent, 0–100
	Multiple    float64
}

// Curve samples fn at n+1 evenly spaced utilizations between 0 and 100%,
// producing the series plotted in Figure 2.
func Curve(fn WeightFn, n int) []CurvePoint {
	if n < 1 {
		n = 1
	}
	pts := make([]CurvePoint, 0, n+1)
	for i := 0; i <= n; i++ {
		x := float64(i) / float64(n)
		pts = append(pts, CurvePoint{Utilization: 100 * x, Multiple: fn(x)})
	}
	return pts
}
