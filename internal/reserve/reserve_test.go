package reserve

import (
	"math"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

func TestFigure2CurveValues(t *testing.T) {
	// Spot-check the three curves against their closed forms at the
	// utilizations highlighted in Figure 2.
	cases := []struct {
		name string
		fn   WeightFn
		x    float64
		want float64
	}{
		{"phi1(0)", ExpSteep, 0, math.Exp(-1)},
		{"phi1(0.5)", ExpSteep, 0.5, 1},
		{"phi1(1)", ExpSteep, 1, math.Exp(1)},
		{"phi2(0)", ExpMild, 0, math.Exp(-0.5)},
		{"phi2(0.5)", ExpMild, 0.5, 1},
		{"phi2(1)", ExpMild, 1, math.Exp(0.5)},
		{"phi3(0)", Hyperbolic, 0, 1 / 1.5},
		{"phi3(0.5)", Hyperbolic, 0.5, 1},
		{"phi3(1)", Hyperbolic, 1, 2},
	}
	for _, c := range cases {
		if got := c.fn(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAllPaperCurvesSatisfyProperties(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   WeightFn
	}{
		{"ExpSteep", ExpSteep},
		{"ExpMild", ExpMild},
		{"Hyperbolic", Hyperbolic},
	} {
		p, err := CheckProperties(c.fn, 200)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !p.Satisfied() {
			t.Errorf("%s violates Section IV.A properties: %+v", c.name, p)
		}
	}
}

func TestBoundedRatioValues(t *testing.T) {
	// Property 5: φ(1) = k·φ(0). Check the analytic k for each curve.
	cases := []struct {
		fn   WeightFn
		want float64
	}{
		{ExpSteep, math.Exp(2)},
		{ExpMild, math.Exp(1)},
		{Hyperbolic, 3},
	}
	for i, c := range cases {
		p, err := CheckProperties(c.fn, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.BoundedRatio-c.want) > 1e-9 {
			t.Errorf("case %d: k = %v, want %v", i, p.BoundedRatio, c.want)
		}
	}
}

func TestCheckPropertiesRejectsBadCurves(t *testing.T) {
	decreasing := WeightFn(func(x float64) float64 { return 2 - x })
	p, err := CheckProperties(decreasing, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.Monotonic {
		t.Error("decreasing curve reported monotonic")
	}
	if p.Satisfied() {
		t.Error("decreasing curve reported satisfied")
	}

	flat := WeightFn(func(float64) float64 { return 1 })
	p, err = CheckProperties(flat, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.AboveOneWhenOver {
		t.Error("flat curve cannot exceed 1 when over-utilized")
	}
	if p.CongestionConvex {
		t.Error("flat curve has no congestion convexity")
	}

	if _, err := CheckProperties(flat, 2); err == nil {
		t.Error("n < 4 accepted")
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"exp-steep", "phi1", "exp-mild", "phi2", "hyperbolic", "phi3"} {
		fn, err := Named(name)
		if err != nil || fn == nil {
			t.Errorf("Named(%q) = %v", name, err)
		}
	}
	if _, err := Named("bogus"); err == nil {
		t.Error("Named(bogus) accepted")
	}
}

func TestPowerCurveClamps(t *testing.T) {
	fn := Power(0.5, 2.5, 2)
	if got := fn(-1); got != 0.5 {
		t.Errorf("fn(-1) = %v", got)
	}
	if got := fn(2); got != 2.5 {
		t.Errorf("fn(2) = %v", got)
	}
	if got := fn(0.5); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("fn(0.5) = %v", got)
	}
}

func TestPricerPrice(t *testing.T) {
	pr := NewPricer(ExpSteep)
	pool := resource.Pool{Cluster: "r1", Dim: resource.CPU}

	// At 50% utilization the multiple is exactly 1, so price = cost.
	if got := pr.Price(pool, 0.5, 10); math.Abs(got-10) > 1e-9 {
		t.Errorf("price at 50%% = %v", got)
	}
	// Congested pools cost more than idle ones.
	if pr.Price(pool, 0.95, 10) <= pr.Price(pool, 0.10, 10) {
		t.Error("congested price not above idle price")
	}
	// Utilization clamps.
	if got := pr.Price(pool, -3, 10); math.Abs(got-pr.Price(pool, 0, 10)) > 1e-12 {
		t.Errorf("negative utilization not clamped: %v", got)
	}
	if got := pr.Price(pool, 7, 10); math.Abs(got-pr.Price(pool, 1, 10)) > 1e-12 {
		t.Errorf("excess utilization not clamped: %v", got)
	}
	// Floor applies with zero cost.
	if got := pr.Price(pool, 0.5, 0); got != pr.Floor {
		t.Errorf("floor not applied: %v", got)
	}
}

func TestPricerPerDimensionOverride(t *testing.T) {
	pr := NewPricer(ExpMild)
	pr.PerDimension = map[resource.Dimension]WeightFn{
		resource.Disk: Hyperbolic,
	}
	cpu := resource.Pool{Cluster: "r1", Dim: resource.CPU}
	disk := resource.Pool{Cluster: "r1", Dim: resource.Disk}
	// At full utilization ExpMild gives e^0.5 ≈ 1.65, Hyperbolic gives 2.
	if got := pr.Price(cpu, 1, 1); math.Abs(got-math.Exp(0.5)) > 1e-9 {
		t.Errorf("cpu price = %v", got)
	}
	if got := pr.Price(disk, 1, 1); math.Abs(got-2) > 1e-9 {
		t.Errorf("disk price = %v", got)
	}
}

func TestPricerPrices(t *testing.T) {
	reg := resource.NewStandardRegistry("r1")
	pr := NewPricer(ExpSteep)
	util := resource.Vector{0.9, 0.5, 0.1}
	cost := resource.Vector{10, 5, 1}
	p, err := pr.Prices(reg, util, cost)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("got %d prices", len(p))
	}
	if p[0] <= cost[0] {
		t.Errorf("congested pool priced %v, below cost %v", p[0], cost[0])
	}
	if math.Abs(p[1]-cost[1]) > 1e-9 {
		t.Errorf("50%%-utilized pool priced %v, want cost %v", p[1], cost[1])
	}
	if p[2] >= cost[2] {
		t.Errorf("idle pool priced %v, not below cost %v", p[2], cost[2])
	}

	if _, err := pr.Prices(reg, resource.Vector{1}, cost); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCurveSampling(t *testing.T) {
	pts := Curve(ExpSteep, 100)
	if len(pts) != 101 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Utilization != 0 || pts[100].Utilization != 100 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[100])
	}
	if pts[50].Multiple != 1 {
		t.Errorf("midpoint multiple = %v", pts[50].Multiple)
	}
	if got := Curve(ExpSteep, 0); len(got) != 2 {
		t.Errorf("n<1 fallback gave %d points", len(got))
	}
}

func TestQuickReservePriceMonotoneInUtilization(t *testing.T) {
	pr := NewPricer(Hyperbolic)
	pool := resource.Pool{Cluster: "q", Dim: resource.RAM}
	prop := func(a, b uint8) bool {
		x := float64(a) / 255
		y := float64(b) / 255
		if x > y {
			x, y = y, x
		}
		return pr.Price(pool, x, 7) <= pr.Price(pool, y, 7)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReservePriceLinearInCost(t *testing.T) {
	pr := NewPricer(ExpMild)
	pr.Floor = 0
	pool := resource.Pool{Cluster: "q", Dim: resource.CPU}
	prop := func(a uint8, c uint8) bool {
		x := float64(a) / 255
		cost := float64(c)
		got := pr.Price(pool, x, 2*cost)
		want := 2 * pr.Price(pool, x, cost)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
