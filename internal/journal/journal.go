// Package journal is the durability layer under the event-sourced
// exchange: an append-only write-ahead log of framed event records plus
// a periodically rewritten snapshot, stored together in one directory.
//
// Layout and protocol:
//
//   - LOCK — a flock(2)-held lockfile. Open refuses the directory while
//     another live process holds it; the kernel releases the lock when
//     the holder dies, so a crashed process never wedges recovery.
//   - wal — the write-ahead log: a 14-byte header (magic "JRNL1\n" plus
//     the little-endian sequence number of the first record) followed by
//     length+CRC framed records: [uint32 len][uint32 crc32(payload)]
//     [payload]. Appends write() straight to the file descriptor — there
//     is no userspace buffer — so a process kill loses nothing that was
//     appended; an fsync policy (Options.FsyncEvery) bounds what power
//     loss can take.
//   - snapshot.json — {"seq": N, "state": …}: the caller's full state at
//     sequence N, written tmp+rename+dir-fsync so it is atomically either
//     the old or the new snapshot. After a durable snapshot the WAL is
//     rotated: a fresh wal starting at N+1 replaces it, bounding replay.
//
// Recovery = snapshot + replay of the WAL tail. A torn tail — a partial
// frame or a CRC mismatch, the signature of a mid-write crash — is
// physically truncated to the last durable prefix and reported (with the
// byte offset, frame index, and best-effort event kind) in Recovery,
// never served; Open fails hard only when the surviving files cannot
// reconstruct any consistent prefix (for instance, a rotated WAL whose
// covering snapshot is unreadable).
//
// Disk faults at runtime are first-class, not just crash artifacts:
// every disk operation goes through the Options.FS seam, and a failed
// append (write error, short write, or a failed group-commit fsync)
// rolls the WAL back to its pre-append length before the error is
// returned — no partial frame is ever readable, a retried append
// reproduces the identical byte stream, and Probe lets a degraded
// caller test whether the disk has healed.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"clustermarket/internal/telemetry"
)

// walMagic begins every WAL file; the trailing newline makes `head -1`
// on a journal identify itself.
var walMagic = []byte("JRNL1\n")

const walHeaderSize = 6 + 8 // magic + little-endian firstSeq

// ErrClosed is returned by operations on a closed (or crashed) journal.
var ErrClosed = errors.New("journal: closed")

// ErrLocked is wrapped into Open's error when another live process
// holds the directory flock, so supervisors can distinguish a
// lock-held race (retryable: the old process is still shutting down)
// from real damage. Test with errors.Is.
var ErrLocked = errors.New("journal: directory locked")

// Options tunes a Journal.
type Options struct {
	// FsyncEvery is the group-commit window: the WAL is fsynced after
	// every FsyncEvery appended records. 1 (the default) fsyncs each
	// append — full power-loss durability at full latency cost; larger
	// windows amortize the fsync across a batch, bounding power loss to
	// the window while a plain process crash still loses nothing.
	FsyncEvery int
	// FS is the filesystem the journal operates through; nil means the
	// real one (OSFS). Tests and internal/fault substitute an injecting
	// wrapper to exercise the disk-failure paths deterministically.
	FS FS
}

// Recovery is what Open found on disk: the latest durable snapshot (if
// any) and the WAL records after it, in append order. Seq numbers are
// 1-based; record i carries sequence SnapshotSeq+1+i.
type Recovery struct {
	// SnapshotSeq is the sequence the snapshot covers (0 = no snapshot).
	SnapshotSeq uint64
	// Snapshot is the caller state stored at SnapshotSeq, nil when none.
	Snapshot []byte
	// Records are the WAL payloads after the snapshot, in order.
	Records [][]byte
	// Truncated reports that a torn tail was cut back; TruncOffset is the
	// byte offset of the first discarded byte and TruncReason says why.
	Truncated   bool
	TruncOffset int64
	TruncReason string
	// TruncFrame is the 0-based index, within this WAL, of the first
	// discarded frame, and TruncKind the event kind decoded (best
	// effort) from whatever payload bytes of it survive — together they
	// tell an operator *what* was lost, not just where. TruncKind is ""
	// when the bytes are undecodable. Only meaningful when Truncated.
	TruncFrame int
	TruncKind  string
	// Notes collects non-fatal recovery observations (ignored snapshots,
	// rebuilt WAL headers, truncations).
	Notes []string
}

// Empty reports whether the directory held no durable state at all —
// the fresh-start case callers use to decide whether to seed a world.
func (r *Recovery) Empty() bool { return r.SnapshotSeq == 0 && len(r.Records) == 0 }

// LastSeq returns the sequence number of the last recovered record.
func (r *Recovery) LastSeq() uint64 { return r.SnapshotSeq + uint64(len(r.Records)) }

// Journal is an open WAL + snapshot directory. All methods are safe for
// concurrent use; Append order defines the global sequence order.
type Journal struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	fs       FS
	wal      File
	lock     *os.File
	seq      uint64 // last assigned sequence number
	unsynced int    // appends since the last fsync
	good     int64  // byte length of the fully-framed WAL prefix
	torn     bool   // a failed write left a tail past good that must be cut
	dead     bool

	// Operational counters behind /metrics. Atomic so Metrics never
	// takes j.mu (a scrape must not contend with group commit); the
	// fsync-latency histogram wraps the wal.Sync calls, which run under
	// j.mu and so time exactly the commit path a writer waits on.
	appends   atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	snapshots atomic.Uint64
	fsyncLat  *telemetry.Histogram
}

// Metrics is a point-in-time copy of the journal's operational
// counters.
type Metrics struct {
	// Appends and Bytes count framed records and frame bytes durably
	// acknowledged to the WAL (headers included); rolled-back appends
	// are not counted.
	Appends, Bytes uint64
	// Fsyncs counts group-commit fsyncs of the WAL; FsyncLatency is
	// their latency distribution. Snapshots counts durable snapshot
	// rotations.
	Fsyncs, Snapshots uint64
	FsyncLatency      telemetry.HistogramSnapshot
}

// Metrics snapshots the counters without taking the journal lock.
func (j *Journal) Metrics() Metrics {
	return Metrics{
		Appends:      j.appends.Load(),
		Bytes:        j.bytes.Load(),
		Fsyncs:       j.fsyncs.Load(),
		Snapshots:    j.snapshots.Load(),
		FsyncLatency: j.fsyncLat.Snapshot(),
	}
}

// syncWALLocked is the single timed fsync path: every WAL fsync goes
// through here so the latency histogram and counter see them all.
func (j *Journal) syncWALLocked() error {
	start := time.Now()
	err := j.wal.Sync()
	j.fsyncLat.Observe(time.Since(start))
	j.fsyncs.Add(1)
	return err
}

type snapshotFile struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// Open acquires the directory (creating it if needed), recovers its
// durable state, and returns the journal positioned to append after the
// recovered prefix. A second Open of the same directory by a live
// process fails with an error wrapping ErrLocked.
func Open(dir string, opts Options) (*Journal, *Recovery, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 1
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS()
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts, fs: fs, lock: lock, fsyncLat: telemetry.NewFsyncHistogram()}
	rec, err := j.recover()
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	return j, rec, nil
}

// acquireLock flocks dir/LOCK exclusively, non-blocking. The lock dies
// with the process, so stale lockfiles never block recovery. The lock
// is raw os, never behind the FS seam: flock needs a real descriptor.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open lockfile: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: directory %s is locked by another process (flock %s: %v): %w", dir, path, err, ErrLocked)
	}
	return f, nil
}

func (j *Journal) walPath() string  { return filepath.Join(j.dir, "wal") }
func (j *Journal) snapPath() string { return filepath.Join(j.dir, "snapshot.json") }

// recover loads the snapshot and WAL tail, repairing a torn tail, and
// leaves j.wal open for appends.
func (j *Journal) recover() (*Recovery, error) {
	rec := &Recovery{}

	// Snapshot: an unreadable file (empty, partial, corrupt JSON) is
	// ignored with a note — recovery can still succeed from a full WAL.
	var snapSeq uint64
	if raw, err := j.fs.ReadFile(j.snapPath()); err == nil {
		var snap snapshotFile
		if jerr := json.Unmarshal(raw, &snap); jerr != nil {
			rec.Notes = append(rec.Notes, fmt.Sprintf("snapshot %s unreadable (%v); ignored", j.snapPath(), jerr))
		} else {
			snapSeq = snap.Seq
			rec.SnapshotSeq = snap.Seq
			rec.Snapshot = snap.State
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}

	data, err := j.fs.ReadFile(j.walPath())
	switch {
	case os.IsNotExist(err):
		if err := j.writeFreshWAL(snapSeq + 1); err != nil {
			return nil, err
		}
		j.seq = snapSeq
		j.good = walHeaderSize
	case err != nil:
		return nil, fmt.Errorf("journal: read wal: %w", err)
	default:
		firstSeq, payloads, goodLen, reason, tornTail, perr := parseWAL(data)
		if perr != nil {
			return nil, fmt.Errorf("journal: wal %s: %w", j.walPath(), perr)
		}
		if goodLen < walHeaderSize {
			// The header itself is torn (empty or partial file): nothing in
			// this WAL is recoverable, so rebuild it after the snapshot.
			rec.Truncated = true
			rec.TruncOffset = goodLen
			rec.TruncReason = reason
			rec.Notes = append(rec.Notes, fmt.Sprintf("wal %s: %s; rebuilt empty at seq %d", j.walPath(), reason, snapSeq+1))
			if err := j.writeFreshWAL(snapSeq + 1); err != nil {
				return nil, err
			}
			j.seq = snapSeq
			j.good = walHeaderSize
			break
		}
		if reason != "" {
			rec.Truncated = true
			rec.TruncOffset = goodLen
			rec.TruncReason = reason
			rec.TruncFrame = len(payloads)
			rec.TruncKind = payloadKind(tornTail)
			lost := fmt.Sprintf("frame %d", rec.TruncFrame)
			if rec.TruncKind != "" {
				lost += fmt.Sprintf(" (%s event)", rec.TruncKind)
			}
			rec.Notes = append(rec.Notes, fmt.Sprintf(
				"wal %s: %s; discarded %s, truncated to last durable prefix (%d bytes, %d records)",
				j.walPath(), reason, lost, goodLen, len(payloads)))
			if err := j.fs.Truncate(j.walPath(), goodLen); err != nil {
				return nil, fmt.Errorf("journal: truncate torn wal: %w", err)
			}
		}
		if firstSeq > snapSeq+1 {
			return nil, fmt.Errorf(
				"journal: wal %s starts at seq %d but the latest durable snapshot covers only seq %d — records %d..%d are lost",
				j.walPath(), firstSeq, snapSeq, snapSeq+1, firstSeq-1)
		}
		last := firstSeq + uint64(len(payloads)) - 1
		if len(payloads) == 0 {
			last = firstSeq - 1
		}
		for i, p := range payloads {
			if firstSeq+uint64(i) <= snapSeq {
				continue // already folded into the snapshot
			}
			rec.Records = append(rec.Records, p)
		}
		j.seq = last
		if j.seq < snapSeq {
			j.seq = snapSeq
		}
		j.good = goodLen
	}

	f, err := j.fs.OpenFile(j.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal for append: %w", err)
	}
	j.wal = f
	return rec, nil
}

// parseWAL walks the framed records. It returns the parsed payloads,
// the byte length of the valid prefix, and — when the file ends in a
// torn or corrupt frame — a human reason naming the byte offset plus
// whatever payload bytes of the offending frame survive (for
// best-effort kind identification). A foreign header (wrong magic) is
// a hard error.
func parseWAL(data []byte) (firstSeq uint64, payloads [][]byte, goodLen int64, reason string, torn []byte, err error) {
	if len(data) < walHeaderSize {
		return 0, nil, int64(len(data)),
			fmt.Sprintf("torn header: %d of %d bytes", len(data), walHeaderSize), nil, nil
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		return 0, nil, 0, "", nil, fmt.Errorf("bad magic %q (not a journal WAL)", data[:len(walMagic)])
	}
	firstSeq = binary.LittleEndian.Uint64(data[len(walMagic):walHeaderSize])
	off := int64(walHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < 8 {
			return firstSeq, payloads, off,
				fmt.Sprintf("torn record frame at byte offset %d (%d trailing bytes)", off, len(rest)), nil, nil
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if int64(n) > int64(len(rest))-8 {
			return firstSeq, payloads, off,
				fmt.Sprintf("torn record at byte offset %d (payload length %d, only %d bytes remain)", off, n, len(rest)-8), rest[8:], nil
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return firstSeq, payloads, off,
				fmt.Sprintf("CRC mismatch at byte offset %d (record seq %d)", off, firstSeq+uint64(len(payloads))), payload, nil
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += 8 + int64(n)
	}
	return firstSeq, payloads, off, "", nil, nil
}

// payloadKind best-effort decodes the event kind from a frame payload
// that may be partial or corrupt. Event payloads are JSON objects whose
// kind is the leading "k" field (market and federation events alike),
// so even a torn prefix usually identifies what was lost.
func payloadKind(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	var probe struct {
		K string `json:"k"`
	}
	if err := json.Unmarshal(p, &probe); err == nil && probe.K != "" {
		return probe.K
	}
	const key = `"k":"`
	if i := bytes.Index(p, []byte(key)); i >= 0 {
		rest := p[i+len(key):]
		if end := bytes.IndexByte(rest, '"'); end > 0 {
			return string(rest[:end])
		}
	}
	return ""
}

// writeFreshWAL creates an empty WAL whose first record will carry
// firstSeq, via tmp+rename+dir-fsync so a crash leaves either the old
// or the new file.
func (j *Journal) writeFreshWAL(firstSeq uint64) error {
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], firstSeq)
	tmp := j.walPath() + ".tmp"
	f, err := j.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: create wal: %w", err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close wal: %w", err)
	}
	if err := j.fs.Rename(tmp, j.walPath()); err != nil {
		return fmt.Errorf("journal: install wal: %w", err)
	}
	return j.syncDir()
}

func (j *Journal) syncDir() error {
	if err := j.fs.SyncDir(j.dir); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append writes one framed record to the WAL and returns its sequence
// number. The record hits the file descriptor before Append returns (a
// process crash cannot lose it); it is fsynced per Options.FsyncEvery
// (power loss is bounded by the group-commit window). On failure the
// WAL is rolled back to its pre-append length: the failed record is
// never readable, the sequence number is not consumed, and an
// identical retry is safe.
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

// AppendBatch writes records as one write(2) and returns the sequence
// of the last. The batch counts as len(payloads) records toward the
// group-commit window. Failure rolls back the whole batch.
func (j *Journal) AppendBatch(payloads [][]byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return 0, ErrClosed
	}
	if err := j.repairIfTornLocked(); err != nil {
		return 0, err
	}
	size := 0
	for _, p := range payloads {
		size += 8 + len(p)
	}
	buf := make([]byte, 0, size)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	if err := j.writeFramesLocked(buf, len(payloads)); err != nil {
		return 0, err
	}
	return j.seq, nil
}

func (j *Journal) appendLocked(payload []byte) (uint64, error) {
	if j.dead {
		return 0, ErrClosed
	}
	if err := j.repairIfTornLocked(); err != nil {
		return 0, err
	}
	buf := appendFrame(make([]byte, 0, 8+len(payload)), payload)
	if err := j.writeFramesLocked(buf, 1); err != nil {
		return 0, err
	}
	return j.seq, nil
}

// writeFramesLocked writes one fully framed buffer carrying n records
// and advances the sequence, rolling the WAL back to its pre-write
// length on any failure — write error, short write, or a failed
// group-commit fsync — so an unacknowledged record never becomes
// readable and a retry reproduces the identical byte stream.
func (j *Journal) writeFramesLocked(buf []byte, n int) error {
	start := j.good
	wrote, werr := j.wal.Write(buf)
	if werr != nil || wrote != len(buf) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		j.retractLocked(start)
		return fmt.Errorf("journal: append: %w", werr)
	}
	j.good += int64(len(buf))
	j.seq += uint64(n)
	j.unsynced += n
	if err := j.maybeSyncLocked(); err != nil {
		// The frames hit the fd but their durability is unknown; retract
		// them so the acknowledged prefix and the file agree and the
		// caller's retry cannot duplicate them.
		j.seq -= uint64(n)
		j.unsynced -= n
		j.retractLocked(start)
		return err
	}
	j.appends.Add(uint64(n))
	j.bytes.Add(uint64(len(buf)))
	return nil
}

// retractLocked cuts the WAL back to good bytes after a failed write so
// no partial or unacknowledged frame is ever readable. If the truncate
// itself fails (the disk is truly sick) the journal is marked torn and
// the cut is retried before the next append, or by Probe.
func (j *Journal) retractLocked(good int64) {
	j.good = good
	if err := j.fs.Truncate(j.walPath(), good); err != nil {
		j.torn = true
		return
	}
	j.torn = false
}

func (j *Journal) repairIfTornLocked() error {
	if !j.torn {
		return nil
	}
	if err := j.fs.Truncate(j.walPath(), j.good); err != nil {
		return fmt.Errorf("journal: repair torn tail: %w", err)
	}
	j.torn = false
	return nil
}

// Probe checks whether the journal can currently persist: it repairs
// any torn tail left behind by a failed append, then forces an fsync
// round trip of the WAL. A nil return means the disk accepted a full
// write path and appends may resume — the health check degraded
// callers use to decide when to exit quiesce.
func (j *Journal) Probe() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	if err := j.repairIfTornLocked(); err != nil {
		return err
	}
	if err := j.syncWALLocked(); err != nil {
		return fmt.Errorf("journal: probe fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func (j *Journal) maybeSyncLocked() error {
	if j.unsynced < j.opts.FsyncEvery {
		return nil
	}
	if err := j.syncWALLocked(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Sync flushes any unsynced tail of the group-commit window to stable
// storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	if j.unsynced == 0 {
		return nil
	}
	if err := j.syncWALLocked(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Snapshot durably stores state as covering every record appended so
// far, then rotates the WAL so replay restarts from the snapshot. The
// caller must guarantee state reflects exactly the events up to the
// current sequence (i.e. no concurrent appends are in flight).
//
// The rotation is failure-safe: the current WAL file and descriptor
// are not touched until the replacement is durably written and renamed
// into place, so a Snapshot that fails at any step leaves the journal
// exactly as it was — fully appendable, with the old (longer) replay
// tail — and the caller may simply retry later.
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	raw, err := json.Marshal(snapshotFile{Seq: j.seq, State: state})
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	tmp := j.snapPath() + ".tmp"
	f, err := j.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: create snapshot: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	if err := j.fs.Rename(tmp, j.snapPath()); err != nil {
		return fmt.Errorf("journal: install snapshot: %w", err)
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable; rotate the WAL so the replay tail is
	// bounded. Build the replacement completely — written, synced, and
	// reopened for append — before renaming it over the old WAL, and
	// only then swap descriptors: a failure anywhere leaves the old WAL
	// (whose records the snapshot now covers) still attached and valid.
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], j.seq+1)
	walTmp := j.walPath() + ".tmp"
	tf, err := j.fs.Create(walTmp)
	if err != nil {
		return fmt.Errorf("journal: create wal: %w", err)
	}
	if _, err := tf.Write(hdr[:]); err != nil {
		tf.Close()
		return fmt.Errorf("journal: write wal header: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("journal: sync wal: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("journal: close wal: %w", err)
	}
	// Open the replacement while it is still at its tmp name: the
	// descriptor follows the inode through the rename, and if this open
	// fails the old WAL has not been displaced.
	nf, err := j.fs.OpenFile(walTmp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen wal: %w", err)
	}
	if err := j.fs.Rename(walTmp, j.walPath()); err != nil {
		nf.Close()
		return fmt.Errorf("journal: install wal: %w", err)
	}
	old := j.wal
	j.wal = nf
	j.good = walHeaderSize
	j.torn = false
	j.unsynced = 0
	old.Close()
	j.snapshots.Add(1)
	return j.syncDir()
}

// Close fsyncs and closes the journal, releasing the directory lock.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return nil
	}
	j.dead = true
	var first error
	if j.unsynced > 0 {
		if err := j.wal.Sync(); err != nil && first == nil {
			first = fmt.Errorf("journal: fsync on close: %w", err)
		}
	}
	if err := j.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := j.lock.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Crash closes the file descriptors without the final fsync — the
// moral equivalent of SIGKILL, for crash-recovery tests and scenarios.
// Appended records survive (they were written, and the OS page cache
// outlives the process); only the flock is released.
func (j *Journal) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	j.dead = true
	j.wal.Close()
	j.lock.Close()
}
