// Package journal is the durability layer under the event-sourced
// exchange: an append-only write-ahead log of framed event records plus
// a periodically rewritten snapshot, stored together in one directory.
//
// Layout and protocol:
//
//   - LOCK — a flock(2)-held lockfile. Open refuses the directory while
//     another live process holds it; the kernel releases the lock when
//     the holder dies, so a crashed process never wedges recovery.
//   - wal — the write-ahead log: a 14-byte header (magic "JRNL1\n" plus
//     the little-endian sequence number of the first record) followed by
//     length+CRC framed records: [uint32 len][uint32 crc32(payload)]
//     [payload]. Appends write() straight to the file descriptor — there
//     is no userspace buffer — so a process kill loses nothing that was
//     appended; an fsync policy (Options.FsyncEvery) bounds what power
//     loss can take.
//   - snapshot.json — {"seq": N, "state": …}: the caller's full state at
//     sequence N, written tmp+rename+dir-fsync so it is atomically either
//     the old or the new snapshot. After a durable snapshot the WAL is
//     rotated: a fresh wal starting at N+1 replaces it, bounding replay.
//
// Recovery = snapshot + replay of the WAL tail. A torn tail — a partial
// frame or a CRC mismatch, the signature of a mid-write crash — is
// physically truncated to the last durable prefix and reported (with the
// byte offset) in Recovery, never served; Open fails hard only when the
// surviving files cannot reconstruct any consistent prefix (for
// instance, a rotated WAL whose covering snapshot is unreadable).
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"clustermarket/internal/telemetry"
)

// walMagic begins every WAL file; the trailing newline makes `head -1`
// on a journal identify itself.
var walMagic = []byte("JRNL1\n")

const walHeaderSize = 6 + 8 // magic + little-endian firstSeq

// ErrClosed is returned by operations on a closed (or crashed) journal.
var ErrClosed = errors.New("journal: closed")

// Options tunes a Journal.
type Options struct {
	// FsyncEvery is the group-commit window: the WAL is fsynced after
	// every FsyncEvery appended records. 1 (the default) fsyncs each
	// append — full power-loss durability at full latency cost; larger
	// windows amortize the fsync across a batch, bounding power loss to
	// the window while a plain process crash still loses nothing.
	FsyncEvery int
}

// Recovery is what Open found on disk: the latest durable snapshot (if
// any) and the WAL records after it, in append order. Seq numbers are
// 1-based; record i carries sequence SnapshotSeq+1+i.
type Recovery struct {
	// SnapshotSeq is the sequence the snapshot covers (0 = no snapshot).
	SnapshotSeq uint64
	// Snapshot is the caller state stored at SnapshotSeq, nil when none.
	Snapshot []byte
	// Records are the WAL payloads after the snapshot, in order.
	Records [][]byte
	// Truncated reports that a torn tail was cut back; TruncOffset is the
	// byte offset of the first discarded byte and TruncReason says why.
	Truncated   bool
	TruncOffset int64
	TruncReason string
	// Notes collects non-fatal recovery observations (ignored snapshots,
	// rebuilt WAL headers, truncations).
	Notes []string
}

// Empty reports whether the directory held no durable state at all —
// the fresh-start case callers use to decide whether to seed a world.
func (r *Recovery) Empty() bool { return r.SnapshotSeq == 0 && len(r.Records) == 0 }

// LastSeq returns the sequence number of the last recovered record.
func (r *Recovery) LastSeq() uint64 { return r.SnapshotSeq + uint64(len(r.Records)) }

// Journal is an open WAL + snapshot directory. All methods are safe for
// concurrent use; Append order defines the global sequence order.
type Journal struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	wal      *os.File
	lock     *os.File
	seq      uint64 // last assigned sequence number
	unsynced int    // appends since the last fsync
	dead     bool

	// Operational counters behind /metrics. Atomic so Metrics never
	// takes j.mu (a scrape must not contend with group commit); the
	// fsync-latency histogram wraps the wal.Sync calls, which run under
	// j.mu and so time exactly the commit path a writer waits on.
	appends   atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	snapshots atomic.Uint64
	fsyncLat  *telemetry.Histogram
}

// Metrics is a point-in-time copy of the journal's operational
// counters.
type Metrics struct {
	// Appends and Bytes count framed records and frame bytes written to
	// the WAL (headers included).
	Appends, Bytes uint64
	// Fsyncs counts group-commit fsyncs of the WAL; FsyncLatency is
	// their latency distribution. Snapshots counts durable snapshot
	// rotations.
	Fsyncs, Snapshots uint64
	FsyncLatency      telemetry.HistogramSnapshot
}

// Metrics snapshots the counters without taking the journal lock.
func (j *Journal) Metrics() Metrics {
	return Metrics{
		Appends:      j.appends.Load(),
		Bytes:        j.bytes.Load(),
		Fsyncs:       j.fsyncs.Load(),
		Snapshots:    j.snapshots.Load(),
		FsyncLatency: j.fsyncLat.Snapshot(),
	}
}

// syncWALLocked is the single timed fsync path: every WAL fsync goes
// through here so the latency histogram and counter see them all.
func (j *Journal) syncWALLocked() error {
	start := time.Now()
	err := j.wal.Sync()
	j.fsyncLat.Observe(time.Since(start))
	j.fsyncs.Add(1)
	return err
}

type snapshotFile struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// Open acquires the directory (creating it if needed), recovers its
// durable state, and returns the journal positioned to append after the
// recovered prefix. A second Open of the same directory by a live
// process fails with a lockfile error.
func Open(dir string, opts Options) (*Journal, *Recovery, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts, lock: lock, fsyncLat: telemetry.NewFsyncHistogram()}
	rec, err := j.recover()
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	return j, rec, nil
}

// acquireLock flocks dir/LOCK exclusively, non-blocking. The lock dies
// with the process, so stale lockfiles never block recovery.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open lockfile: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: directory %s is locked by another process (flock %s): %w", dir, path, err)
	}
	return f, nil
}

func (j *Journal) walPath() string  { return filepath.Join(j.dir, "wal") }
func (j *Journal) snapPath() string { return filepath.Join(j.dir, "snapshot.json") }

// recover loads the snapshot and WAL tail, repairing a torn tail, and
// leaves j.wal open for appends.
func (j *Journal) recover() (*Recovery, error) {
	rec := &Recovery{}

	// Snapshot: an unreadable file (empty, partial, corrupt JSON) is
	// ignored with a note — recovery can still succeed from a full WAL.
	var snapSeq uint64
	if raw, err := os.ReadFile(j.snapPath()); err == nil {
		var snap snapshotFile
		if jerr := json.Unmarshal(raw, &snap); jerr != nil {
			rec.Notes = append(rec.Notes, fmt.Sprintf("snapshot %s unreadable (%v); ignored", j.snapPath(), jerr))
		} else {
			snapSeq = snap.Seq
			rec.SnapshotSeq = snap.Seq
			rec.Snapshot = snap.State
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}

	data, err := os.ReadFile(j.walPath())
	switch {
	case os.IsNotExist(err):
		if err := j.writeFreshWAL(snapSeq + 1); err != nil {
			return nil, err
		}
		j.seq = snapSeq
	case err != nil:
		return nil, fmt.Errorf("journal: read wal: %w", err)
	default:
		firstSeq, payloads, goodLen, reason, perr := parseWAL(data)
		if perr != nil {
			return nil, fmt.Errorf("journal: wal %s: %w", j.walPath(), perr)
		}
		if goodLen < walHeaderSize {
			// The header itself is torn (empty or partial file): nothing in
			// this WAL is recoverable, so rebuild it after the snapshot.
			rec.Truncated = true
			rec.TruncOffset = goodLen
			rec.TruncReason = reason
			rec.Notes = append(rec.Notes, fmt.Sprintf("wal %s: %s; rebuilt empty at seq %d", j.walPath(), reason, snapSeq+1))
			if err := j.writeFreshWAL(snapSeq + 1); err != nil {
				return nil, err
			}
			j.seq = snapSeq
			break
		}
		if reason != "" {
			rec.Truncated = true
			rec.TruncOffset = goodLen
			rec.TruncReason = reason
			rec.Notes = append(rec.Notes, fmt.Sprintf(
				"wal %s: %s; truncated to last durable prefix (%d bytes, %d records)",
				j.walPath(), reason, goodLen, len(payloads)))
			if err := os.Truncate(j.walPath(), goodLen); err != nil {
				return nil, fmt.Errorf("journal: truncate torn wal: %w", err)
			}
		}
		if firstSeq > snapSeq+1 {
			return nil, fmt.Errorf(
				"journal: wal %s starts at seq %d but the latest durable snapshot covers only seq %d — records %d..%d are lost",
				j.walPath(), firstSeq, snapSeq, snapSeq+1, firstSeq-1)
		}
		last := firstSeq + uint64(len(payloads)) - 1
		if len(payloads) == 0 {
			last = firstSeq - 1
		}
		for i, p := range payloads {
			if firstSeq+uint64(i) <= snapSeq {
				continue // already folded into the snapshot
			}
			rec.Records = append(rec.Records, p)
		}
		j.seq = last
		if j.seq < snapSeq {
			j.seq = snapSeq
		}
	}

	f, err := os.OpenFile(j.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal for append: %w", err)
	}
	j.wal = f
	return rec, nil
}

// parseWAL walks the framed records. It returns the parsed payloads,
// the byte length of the valid prefix, and — when the file ends in a
// torn or corrupt frame — a human reason naming the byte offset. A
// foreign header (wrong magic) is a hard error.
func parseWAL(data []byte) (firstSeq uint64, payloads [][]byte, goodLen int64, reason string, err error) {
	if len(data) < walHeaderSize {
		return 0, nil, int64(len(data)),
			fmt.Sprintf("torn header: %d of %d bytes", len(data), walHeaderSize), nil
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		return 0, nil, 0, "", fmt.Errorf("bad magic %q (not a journal WAL)", data[:len(walMagic)])
	}
	firstSeq = binary.LittleEndian.Uint64(data[len(walMagic):walHeaderSize])
	off := int64(walHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < 8 {
			return firstSeq, payloads, off,
				fmt.Sprintf("torn record frame at byte offset %d (%d trailing bytes)", off, len(rest)), nil
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if int64(n) > int64(len(rest))-8 {
			return firstSeq, payloads, off,
				fmt.Sprintf("torn record at byte offset %d (payload length %d, only %d bytes remain)", off, n, len(rest)-8), nil
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return firstSeq, payloads, off,
				fmt.Sprintf("CRC mismatch at byte offset %d (record seq %d)", off, firstSeq+uint64(len(payloads))), nil
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += 8 + int64(n)
	}
	return firstSeq, payloads, off, "", nil
}

// writeFreshWAL creates an empty WAL whose first record will carry
// firstSeq, via tmp+rename+dir-fsync so a crash leaves either the old
// or the new file.
func (j *Journal) writeFreshWAL(firstSeq uint64) error {
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], firstSeq)
	tmp := j.walPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: create wal: %w", err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close wal: %w", err)
	}
	if err := os.Rename(tmp, j.walPath()); err != nil {
		return fmt.Errorf("journal: install wal: %w", err)
	}
	return syncDir(j.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append writes one framed record to the WAL and returns its sequence
// number. The record hits the file descriptor before Append returns (a
// process crash cannot lose it); it is fsynced per Options.FsyncEvery
// (power loss is bounded by the group-commit window).
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

// AppendBatch writes records as one write(2) and returns the sequence
// of the last. The batch counts as len(payloads) records toward the
// group-commit window.
func (j *Journal) AppendBatch(payloads [][]byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return 0, ErrClosed
	}
	size := 0
	for _, p := range payloads {
		size += 8 + len(p)
	}
	buf := make([]byte, 0, size)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	if _, err := j.wal.Write(buf); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	j.appends.Add(uint64(len(payloads)))
	j.bytes.Add(uint64(len(buf)))
	j.seq += uint64(len(payloads))
	j.unsynced += len(payloads)
	if err := j.maybeSyncLocked(); err != nil {
		return 0, err
	}
	return j.seq, nil
}

func (j *Journal) appendLocked(payload []byte) (uint64, error) {
	if j.dead {
		return 0, ErrClosed
	}
	buf := appendFrame(make([]byte, 0, 8+len(payload)), payload)
	if _, err := j.wal.Write(buf); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	j.appends.Add(1)
	j.bytes.Add(uint64(len(buf)))
	j.seq++
	j.unsynced++
	if err := j.maybeSyncLocked(); err != nil {
		return 0, err
	}
	return j.seq, nil
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func (j *Journal) maybeSyncLocked() error {
	if j.unsynced < j.opts.FsyncEvery {
		return nil
	}
	if err := j.syncWALLocked(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Sync flushes any unsynced tail of the group-commit window to stable
// storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	if j.unsynced == 0 {
		return nil
	}
	if err := j.syncWALLocked(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Snapshot durably stores state as covering every record appended so
// far, then rotates the WAL so replay restarts from the snapshot. The
// caller must guarantee state reflects exactly the events up to the
// current sequence (i.e. no concurrent appends are in flight).
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	raw, err := json.Marshal(snapshotFile{Seq: j.seq, State: state})
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	tmp := j.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: create snapshot: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.snapPath()); err != nil {
		return fmt.Errorf("journal: install snapshot: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	// The snapshot is durable; rotate the WAL so the replay tail is
	// bounded. The old records are covered by the snapshot now.
	if err := j.wal.Close(); err != nil {
		return fmt.Errorf("journal: close old wal: %w", err)
	}
	if err := j.writeFreshWAL(j.seq + 1); err != nil {
		return err
	}
	f, err = os.OpenFile(j.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen wal: %w", err)
	}
	j.wal = f
	j.unsynced = 0
	j.snapshots.Add(1)
	return nil
}

// Close fsyncs and closes the journal, releasing the directory lock.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return nil
	}
	j.dead = true
	var first error
	if j.unsynced > 0 {
		if err := j.wal.Sync(); err != nil && first == nil {
			first = fmt.Errorf("journal: fsync on close: %w", err)
		}
	}
	if err := j.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := j.lock.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Crash closes the file descriptors without the final fsync — the
// moral equivalent of SIGKILL, for crash-recovery tests and scenarios.
// Appended records survive (they were written, and the OS page cache
// outlives the process); only the flock is released.
func (j *Journal) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	j.dead = true
	j.wal.Close()
	j.lock.Close()
}
