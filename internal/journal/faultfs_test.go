package journal

// Disk-fault behavior at the journal layer, driven through the FS seam
// with an in-package flaky filesystem (internal/fault wraps this seam
// from outside; it cannot be imported here without a cycle). Pins the
// rollback contract — a failed append leaves the WAL byte-identical to
// never having tried, so the retry writes identical bytes — plus the
// Probe heal path, rename-failure rotation safety, and the ErrLocked
// sentinel and torn-tail frame metadata marketd reports at startup.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// flakyFS fails a scripted number of upcoming operations, then heals.
type flakyFS struct {
	FS
	failWrites   int    // whole-write EIO
	shortWrites  int    // write half the buffer, then EIO
	failSyncs    int    // fsync EIO
	failRenameTo string // base name of a rename target to fail once
}

func (f *flakyFS) Rename(oldpath, newpath string) error {
	if f.failRenameTo != "" && filepath.Base(newpath) == f.failRenameTo {
		f.failRenameTo = ""
		return syscall.EIO
	}
	return f.FS.Rename(oldpath, newpath)
}

func (f *flakyFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	return &flakyFile{File: file, fs: f}, err
}

func (f *flakyFS) Create(name string) (File, error) {
	file, err := f.FS.Create(name)
	return &flakyFile{File: file, fs: f}, err
}

type flakyFile struct {
	File
	fs *flakyFS
}

func (fl *flakyFile) Write(p []byte) (int, error) {
	if fl.fs.failWrites > 0 {
		fl.fs.failWrites--
		return 0, syscall.EIO
	}
	if fl.fs.shortWrites > 0 {
		fl.fs.shortWrites--
		n, _ := fl.File.Write(p[:len(p)/2])
		return n, syscall.EIO
	}
	return fl.File.Write(p)
}

func (fl *flakyFile) Sync() error {
	if fl.fs.failSyncs > 0 {
		fl.fs.failSyncs--
		return syscall.EIO
	}
	return fl.File.Sync()
}

func TestErrLockedSentinel(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	defer j.Close()
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
}

// TestTornTailNamesFrameAndKind: the recovery report names which frame
// was discarded and what event kind it carried, when decodable.
func TestTornTailNamesFrameAndKind(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, `{"k":"acct-opened"}`, `{"k":"order-settled"}`)
	j.Crash()

	// Tear one byte off the last frame: enough to break it, little
	// enough that the kind stays decodable from the remains.
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir, Options{})
	defer j2.Close()
	if !rec.Truncated {
		t.Fatal("torn tail not reported")
	}
	if rec.TruncFrame != 1 {
		t.Errorf("TruncFrame = %d, want 1 (0-based index of the lost frame)", rec.TruncFrame)
	}
	if rec.TruncKind != "order-settled" {
		t.Errorf("TruncKind = %q, want decoded event kind", rec.TruncKind)
	}
}

// TestAppendRollbackRetryClean: a failed append (write EIO, short write,
// or fsync EIO) rolls the WAL back to its pre-append length, so the
// retry lands as the one and only copy of the record.
func TestAppendRollbackRetryClean(t *testing.T) {
	arm := []struct {
		name string
		set  func(fs *flakyFS)
	}{
		{"write-eio", func(fs *flakyFS) { fs.failWrites = 1 }},
		{"short-write", func(fs *flakyFS) { fs.shortWrites = 1 }},
		{"fsync-eio", func(fs *flakyFS) { fs.failSyncs = 1 }},
	}
	for _, tc := range arm {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := &flakyFS{FS: OSFS()}
			j, _ := mustOpen(t, dir, Options{FS: fs, FsyncEvery: 1})
			appendAll(t, j, `{"k":"a"}`)

			tc.set(fs)
			if _, err := j.Append([]byte(`{"k":"b"}`)); err == nil {
				t.Fatal("faulted append succeeded")
			}
			if _, err := j.Append([]byte(`{"k":"b"}`)); err != nil {
				t.Fatalf("retried append: %v", err)
			}
			j.Close()

			j2, rec := mustOpen(t, dir, Options{})
			defer j2.Close()
			got := recordsAsStrings(rec)
			if len(got) != 2 || got[0] != `{"k":"a"}` || got[1] != `{"k":"b"}` {
				t.Errorf("recovered %v, want exactly [a b] — no duplicate, no torn remnant", got)
			}
			if rec.Truncated {
				t.Error("rollback left a torn tail for recovery to repair")
			}
		})
	}
}

// TestProbeHealsSickDisk: Probe fails while fsync fails and succeeds
// once the disk heals, without disturbing the WAL.
func TestProbeHealsSickDisk(t *testing.T) {
	fs := &flakyFS{FS: OSFS()}
	j, _ := mustOpen(t, t.TempDir(), Options{FS: fs})
	defer j.Close()
	appendAll(t, j, `{"k":"a"}`)
	fs.failSyncs = 1
	if err := j.Probe(); err == nil {
		t.Fatal("probe on sick disk succeeded")
	}
	if err := j.Probe(); err != nil {
		t.Fatalf("probe on healed disk: %v", err)
	}
}

// TestSnapshotRenameFailureIsSafe: a failed rename during snapshot
// install or WAL rotation must leave the journal appendable and every
// record recoverable — the old WAL is never displaced until its
// replacement is fully durable.
func TestSnapshotRenameFailureIsSafe(t *testing.T) {
	for _, target := range []string{"snapshot.json", "wal"} {
		t.Run(target, func(t *testing.T) {
			dir := t.TempDir()
			fs := &flakyFS{FS: OSFS()}
			j, _ := mustOpen(t, dir, Options{FS: fs, FsyncEvery: 1})
			appendAll(t, j, `{"k":"a"}`, `{"k":"b"}`)

			fs.failRenameTo = target
			if err := j.Snapshot([]byte(`{"state":1}`)); err == nil {
				t.Fatal("snapshot with failed rename succeeded")
			}
			appendAll(t, j, `{"k":"c"}`)
			j.Close()

			j2, rec := mustOpen(t, dir, Options{})
			defer j2.Close()
			if rec.Truncated {
				t.Error("rename failure left a torn WAL")
			}
			// Replay must still see every record not covered by an
			// installed snapshot; none may be lost.
			want := []string{`{"k":"a"}`, `{"k":"b"}`, `{"k":"c"}`}
			if target == "snapshot.json" {
				// Install failed: no snapshot, full WAL replay.
				if rec.SnapshotSeq != 0 {
					t.Errorf("SnapshotSeq = %d after failed install", rec.SnapshotSeq)
				}
			} else {
				// Snapshot installed, rotation failed: replay resumes
				// after the snapshot from the still-attached old WAL.
				if rec.SnapshotSeq != 2 {
					t.Errorf("SnapshotSeq = %d, want 2", rec.SnapshotSeq)
				}
				want = want[2:]
			}
			got := recordsAsStrings(rec)
			if len(got) != len(want) {
				t.Fatalf("recovered %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("recovered %v, want %v", got, want)
				}
			}
		})
	}
}
