package journal

import "os"

// FS is the filesystem seam under the journal: every disk operation the
// WAL and snapshot paths perform goes through one of these methods, so
// a test (or internal/fault's deterministic injector) can interpose
// ENOSPC, EIO, short writes, and latency at exactly the call sites the
// durability contract must survive. The LOCK file is deliberately *not*
// behind the seam — flock(2) needs a real descriptor, and faulting the
// lock would only simulate a second process, which tests do directly.
//
// Implementations must be safe for use from one goroutine at a time per
// file; the journal serializes all calls under its own mutex.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(dir string) error
}

// File is the journal's view of an open file: sequential writes, fsync,
// close. *os.File satisfies it.
type File interface {
	Write(p []byte) (n int, err error)
	Sync() error
	Close() error
}

// OSFS returns the real filesystem. It is the default when Options.FS
// is nil, and the inner layer fault injectors wrap.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
