package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, rec
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if _, err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func recordsAsStrings(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir, Options{})
	if !rec.Empty() {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}
	appendAll(t, j, "a", "b", "c")
	if got := j.Seq(); got != 3 {
		t.Fatalf("Seq = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got, want := fmt.Sprint(recordsAsStrings(rec2)), "[a b c]"; got != want {
		t.Fatalf("recovered %s, want %s", got, want)
	}
	if rec2.Truncated {
		t.Fatalf("clean close reported truncation: %s", rec2.TruncReason)
	}
	if j2.Seq() != 3 {
		t.Fatalf("Seq after recovery = %d, want 3", j2.Seq())
	}
	// Appends continue the sequence.
	seq, err := j2.Append([]byte("d"))
	if err != nil || seq != 4 {
		t.Fatalf("Append after recovery: seq=%d err=%v, want 4", seq, err)
	}
}

func TestCrashPreservesAppendedRecords(t *testing.T) {
	dir := t.TempDir()
	// A huge group-commit window: nothing is fsynced, yet a process
	// crash (not power loss) must still lose no appended record.
	j, _ := mustOpen(t, dir, Options{FsyncEvery: 1 << 20})
	appendAll(t, j, "a", "b", "c")
	j.Crash()

	_, rec := mustOpen(t, dir, Options{})
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[a b c]"; got != want {
		t.Fatalf("recovered %s after crash, want %s", got, want)
	}
}

func TestTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "first", "second")
	j.Crash()

	// Tear the tail mid-record, as a crash mid-write would.
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-3]
	if err := os.WriteFile(wal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[first]"; got != want {
		t.Fatalf("recovered %s, want %s (last durable prefix)", got, want)
	}
	if !rec.Truncated {
		t.Fatal("torn tail not reported as truncated")
	}
	wantOff := int64(walHeaderSize + 8 + len("first"))
	if rec.TruncOffset != wantOff {
		t.Fatalf("TruncOffset = %d, want %d", rec.TruncOffset, wantOff)
	}
	if !strings.Contains(rec.TruncReason, fmt.Sprintf("byte offset %d", wantOff)) {
		t.Fatalf("TruncReason %q does not name byte offset %d", rec.TruncReason, wantOff)
	}
	// The torn bytes must be physically gone so future appends don't
	// interleave with garbage.
	if fi, err := os.Stat(wal); err != nil || fi.Size() != wantOff {
		t.Fatalf("wal size = %v (err %v), want %d", fi.Size(), err, wantOff)
	}
}

func TestCRCCorruptedRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "first", "second", "third")
	j.Crash()

	// Flip a payload byte in the middle record.
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	secondPayload := int64(walHeaderSize + 8 + len("first") + 8)
	data[secondPayload] ^= 0xff
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[first]"; got != want {
		t.Fatalf("recovered %s, want %s (everything after the corrupt record is discarded)", got, want)
	}
	if !rec.Truncated || !strings.Contains(rec.TruncReason, "CRC mismatch") {
		t.Fatalf("corruption not reported: truncated=%v reason=%q", rec.Truncated, rec.TruncReason)
	}
	wantOff := int64(walHeaderSize + 8 + len("first"))
	if rec.TruncOffset != wantOff {
		t.Fatalf("TruncOffset = %d, want %d", rec.TruncOffset, wantOff)
	}
	if !strings.Contains(rec.TruncReason, fmt.Sprintf("byte offset %d", wantOff)) {
		t.Fatalf("TruncReason %q does not name byte offset %d", rec.TruncReason, wantOff)
	}
}

func TestEmptyAndPartialSnapshot(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"empty":   func(p string) error { return os.WriteFile(p, nil, 0o644) },
		"partial": func(p string) error { return os.WriteFile(p, []byte(`{"seq": 2, "sta`), 0o644) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, dir, Options{})
			appendAll(t, j, "a", "b")
			j.Crash()
			if err := corrupt(filepath.Join(dir, "snapshot.json")); err != nil {
				t.Fatal(err)
			}

			// The WAL still starts at seq 1, so the corrupt snapshot is
			// ignorable: full replay recovers everything.
			_, rec := mustOpen(t, dir, Options{})
			if got, want := fmt.Sprint(recordsAsStrings(rec)), "[a b]"; got != want {
				t.Fatalf("recovered %s, want %s", got, want)
			}
			if rec.SnapshotSeq != 0 || rec.Snapshot != nil {
				t.Fatalf("corrupt snapshot was served: seq=%d", rec.SnapshotSeq)
			}
			if len(rec.Notes) == 0 || !strings.Contains(rec.Notes[0], "snapshot") {
				t.Fatalf("corrupt snapshot not noted: %v", rec.Notes)
			}
		})
	}
}

func TestSnapshotRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "a", "b")
	if err := j.Snapshot([]byte(`{"world":"at-2"}`)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendAll(t, j, "c")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotSeq != 2 {
		t.Fatalf("SnapshotSeq = %d, want 2", rec.SnapshotSeq)
	}
	if string(rec.Snapshot) != `{"world":"at-2"}` {
		t.Fatalf("Snapshot state = %s", rec.Snapshot)
	}
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[c]"; got != want {
		t.Fatalf("replay tail %s, want %s (pre-snapshot records must be rotated out)", got, want)
	}
	if rec.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", rec.LastSeq())
	}
}

func TestCorruptSnapshotWithRotatedWALFailsHard(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "a", "b")
	if err := j.Snapshot([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "c")
	j.Crash()
	// The WAL was rotated (starts at seq 3); destroying the snapshot
	// loses seq 1–2 irrecoverably. Serving a partial world would violate
	// invariants, so Open must refuse.
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("Open with lost prefix: err = %v, want a hard 'records lost' error", err)
	}
}

func TestTornWALHeaderRebuilds(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "a")
	if err := j.Snapshot([]byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	j.Crash()
	// Tear the rotated WAL inside its header.
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("JRN"), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotSeq != 1 || len(rec.Records) != 0 {
		t.Fatalf("recovery = snap %d + %d records, want snapshot-only", rec.SnapshotSeq, len(rec.Records))
	}
	if !rec.Truncated {
		t.Fatal("torn header not reported")
	}
	if seq, err := j2.Append([]byte("b")); err != nil || seq != 2 {
		t.Fatalf("Append after rebuild: seq=%d err=%v, want 2", seq, err)
	}
	j2.Close()
}

func TestForeignWALRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("NOTJRNLxxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("Open over a foreign file: err = %v, want bad-magic error", err)
	}
}

func TestDoubleOpenRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	defer j.Close()
	_, _, err := Open(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second Open: err = %v, want lockfile refusal", err)
	}
}

func TestLockReleasedOnCloseAndCrash(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _ := mustOpen(t, dir, Options{})
	j2.Crash()
	j3, _ := mustOpen(t, dir, Options{})
	j3.Close()
}

func TestClosedJournalErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	j.Close()
	if _, err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := j.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: %v, want ErrClosed", err)
	}
	if err := j.Snapshot(nil); err != ErrClosed {
		t.Fatalf("Snapshot after Close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{FsyncEvery: 2})
	seq, err := j.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil || seq != 3 {
		t.Fatalf("AppendBatch: seq=%d err=%v, want 3", seq, err)
	}
	j.Crash()
	_, rec := mustOpen(t, dir, Options{})
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[a b c]"; got != want {
		t.Fatalf("recovered %s, want %s", got, want)
	}
}

func TestGroupCommitSyncOnDemand(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{FsyncEvery: 64})
	appendAll(t, j, "a")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// A second Sync with nothing unsynced is a no-op.
	if err := j.Sync(); err != nil {
		t.Fatalf("idempotent Sync: %v", err)
	}
	j.Close()
}

// TestTornTailAfterSnapshot combines both repair paths: snapshot intact,
// tail torn — recovery is snapshot + the durable prefix of the tail.
func TestTornTailAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "a", "b")
	if err := j.Snapshot([]byte(`{"n":2}`)); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "c", "d")
	j.Crash()
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotSeq != 2 {
		t.Fatalf("SnapshotSeq = %d, want 2", rec.SnapshotSeq)
	}
	if got, want := fmt.Sprint(recordsAsStrings(rec)), "[c]"; got != want {
		t.Fatalf("tail %s, want %s", got, want)
	}
	if rec.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", rec.LastSeq())
	}
	if !rec.Truncated {
		t.Fatal("torn tail not reported")
	}
}

// TestSeqEncodingIsLittleEndian pins the on-disk header format: firstSeq
// is encoded little-endian after the magic, so journals are portable
// across architectures.
func TestSeqEncodingIsLittleEndian(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "a", "b", "c")
	if err := j.Snapshot([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(data[len(walMagic):walHeaderSize]); got != 4 {
		t.Fatalf("rotated wal firstSeq = %d, want 4", got)
	}
}
