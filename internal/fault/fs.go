package fault

import (
	"fmt"
	"os"
	"time"

	"clustermarket/internal/journal"
)

// NewFS wraps a journal filesystem with the injector's disk faults:
// ENOSPC/EIO/short writes on file writes, failed or delayed fsyncs,
// and failed renames. inner nil means the real filesystem. Reads,
// truncates, and directory creation pass through untouched — they are
// the recovery and repair paths, and faulting them would simulate a
// disk that can never heal rather than one that is misbehaving.
func NewFS(inj *Injector, inner journal.FS) journal.FS {
	if inner == nil {
		inner = journal.OSFS()
	}
	return &fsys{inj: inj, inner: inner}
}

type fsys struct {
	inj   *Injector
	inner journal.FS
}

func (f *fsys) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *fsys) ReadFile(name string) ([]byte, error)         { return f.inner.ReadFile(name) }
func (f *fsys) Truncate(name string, size int64) error       { return f.inner.Truncate(name, size) }

func (f *fsys) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.inj, name: name}, nil
}

func (f *fsys) Create(name string) (journal.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.inj, name: name}, nil
}

func (f *fsys) Rename(oldpath, newpath string) error {
	if kind, ok := f.inj.take(OpDiskRename, newpath); ok {
		if kind == Latency {
			time.Sleep(latencyDelay)
		} else {
			return fmt.Errorf("fault: rename %s: %w", newpath, diskErr(kind))
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *fsys) SyncDir(dir string) error {
	if kind, ok := f.inj.take(OpDiskFsync, dir); ok {
		if kind == Latency {
			time.Sleep(latencyDelay)
		} else {
			return fmt.Errorf("fault: sync dir %s: %w", dir, diskErr(kind))
		}
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes on one open file's write and fsync paths.
type faultFile struct {
	f    journal.File
	inj  *Injector
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	kind, ok := ff.inj.take(OpDiskWrite, ff.name)
	if !ok {
		return ff.f.Write(p)
	}
	switch kind {
	case ShortWrite:
		// Half the frame lands, then the device errors: the torn-write
		// case the journal must retract before anything can read it.
		n, _ := ff.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("fault: short write %s: %w", ff.name, errEIO)
	case Latency:
		time.Sleep(latencyDelay)
		return ff.f.Write(p)
	default:
		return 0, fmt.Errorf("fault: write %s: %w", ff.name, diskErr(kind))
	}
}

func (ff *faultFile) Sync() error {
	kind, ok := ff.inj.take(OpDiskFsync, ff.name)
	if !ok {
		return ff.f.Sync()
	}
	if kind == Latency {
		time.Sleep(latencyDelay)
		return ff.f.Sync()
	}
	return fmt.Errorf("fault: fsync %s: %w", ff.name, diskErr(kind))
}

func (ff *faultFile) Close() error { return ff.f.Close() }

func diskErr(kind Kind) error {
	if kind == ENOSPC {
		return errENOSPC
	}
	return errEIO
}
