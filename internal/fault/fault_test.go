package fault

import (
	"errors"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"clustermarket/internal/journal"
	"clustermarket/internal/telemetry"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	inj.Arm([]Window{{Op: OpDiskWrite, Kind: EIO, Count: 1}})
	inj.ArmEpoch(0, []string{"us"}, nil)
	inj.AttachTelemetry(telemetry.NewFirehose())
	if err := inj.Region(OpRegionOrder, "us"); err != nil {
		t.Errorf("nil injector injected: %v", err)
	}
	if inj.Injected() != 0 || inj.Pending() != 0 || inj.Chaos() {
		t.Error("nil injector reports state")
	}
}

func TestWindowCountConsumes(t *testing.T) {
	inj := New()
	inj.Arm([]Window{{Op: OpRegionOrder, Kind: Unreachable, Count: 2}})
	for n := 0; n < 2; n++ {
		if err := inj.Region(OpRegionOrder, "us"); !errors.Is(err, ErrInjected) {
			t.Fatalf("injection %d = %v, want ErrInjected", n, err)
		}
	}
	if err := inj.Region(OpRegionOrder, "us"); err != nil {
		t.Errorf("exhausted window still fires: %v", err)
	}
	if got := inj.Injected(); got != 2 {
		t.Errorf("Injected = %d, want 2", got)
	}
	if got := inj.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

func TestScopeMatching(t *testing.T) {
	inj := New()
	inj.Arm([]Window{
		{Op: OpRegionOrder, Scope: "eu", Kind: Unreachable, Count: 1},
		{Op: OpDiskWrite, Scope: "eu/wal", Kind: EIO, Count: 1},
	})
	// Region scopes match exactly: "eu-west" must not consume "eu".
	if err := inj.Region(OpRegionOrder, "eu-west"); err != nil {
		t.Errorf("region scope substring-matched: %v", err)
	}
	if err := inj.Region(OpRegionOrder, "eu"); !errors.Is(err, ErrInjected) {
		t.Errorf("exact region scope missed: %v", err)
	}
	// Disk scopes match by path substring.
	if _, hit := inj.take(OpDiskWrite, "/tmp/x/us/wal"); hit {
		t.Error("disk scope matched the wrong path")
	}
	if _, hit := inj.take(OpDiskWrite, "/tmp/x/eu/wal"); !hit {
		t.Error("disk scope substring missed")
	}
}

func TestLatencyFaultSucceeds(t *testing.T) {
	inj := New()
	inj.Arm([]Window{{Op: OpRegionGossip, Kind: Latency, Count: 1}})
	if err := inj.Region(OpRegionGossip, "us"); err != nil {
		t.Errorf("latency fault failed the call: %v", err)
	}
	if inj.Injected() != 1 {
		t.Error("latency fault not counted as injected")
	}
}

func TestArmEpochReplacesWindows(t *testing.T) {
	inj := New()
	inj.ArmEpoch(1, nil, []Window{{Op: OpDiskWrite, Kind: EIO, Count: 3}})
	if got := inj.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	// The next epoch's arm replaces, not appends — unconsumed windows
	// (disk faults armed on an in-memory run, say) cannot accumulate.
	inj.ArmEpoch(2, nil, nil)
	if got := inj.Pending(); got != 0 {
		t.Errorf("Pending after re-arm = %d, want 0", got)
	}
}

// TestChaosScheduleDeterministic pins chaos mode's reproducibility:
// the same seed and ArmEpoch sequence yield identical windows.
func TestChaosScheduleDeterministic(t *testing.T) {
	schedule := func(seed int64) [][]Window {
		inj := NewChaos(seed)
		var out [][]Window
		for epoch := 0; epoch < 20; epoch++ {
			inj.ArmEpoch(epoch, []string{"us", "eu"}, nil)
			inj.mu.Lock()
			out = append(out, append([]Window(nil), inj.windows...))
			inj.mu.Unlock()
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same chaos seed produced different schedules")
	}
	if reflect.DeepEqual(a, schedule(8)) {
		t.Error("different chaos seeds produced identical schedules")
	}
	armed := 0
	for _, ws := range a {
		armed += len(ws)
	}
	if armed == 0 {
		t.Error("20 chaos epochs armed no windows")
	}
}

func TestInjectionPublishedToFirehose(t *testing.T) {
	fire := telemetry.NewFirehose()
	sub := fire.Subscribe(8)
	defer sub.Close()
	inj := New()
	inj.AttachTelemetry(fire)
	inj.Arm([]Window{{Op: OpRegionSettle, Scope: "us", Kind: Unreachable, Count: 1}})
	if err := inj.Region(OpRegionSettle, "us"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Region = %v", err)
	}
	ev := <-sub.C
	if ev.Source != EventSource || ev.Kind != EvFaultInjected {
		t.Fatalf("event = %s/%s", ev.Source, ev.Kind)
	}
	in, ok := ev.Payload.(*Injection)
	if !ok {
		t.Fatalf("payload type %T", ev.Payload)
	}
	if in.Op != OpRegionSettle || in.Scope != "us" || in.Kind != Unreachable || in.Seq != 1 {
		t.Errorf("injection payload = %+v", in)
	}
}

// TestFaultFS drives each disk fault kind through the journal.FS seam.
func TestFaultFS(t *testing.T) {
	dir := t.TempDir()
	inj := New()
	fs := NewFS(inj, nil)

	name := filepath.Join(dir, "f")
	file, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()

	// ENOSPC write: nothing lands.
	inj.Arm([]Window{{Op: OpDiskWrite, Kind: ENOSPC, Count: 1}})
	if n, err := file.Write([]byte("abcdefgh")); !errors.Is(err, syscall.ENOSPC) || n != 0 {
		t.Errorf("ENOSPC write = %d, %v", n, err)
	}
	// Short write: half the buffer lands, then EIO.
	inj.Arm([]Window{{Op: OpDiskWrite, Kind: ShortWrite, Count: 1}})
	if n, err := file.Write([]byte("abcdefgh")); !errors.Is(err, syscall.EIO) || n != 4 {
		t.Errorf("short write = %d, %v", n, err)
	}
	// A clean write passes through.
	if n, err := file.Write([]byte("ok")); err != nil || n != 2 {
		t.Errorf("clean write = %d, %v", n, err)
	}
	// Fsync faults.
	inj.Arm([]Window{{Op: OpDiskFsync, Kind: EIO, Count: 1}})
	if err := file.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("fsync = %v", err)
	}
	if err := file.Sync(); err != nil {
		t.Errorf("healed fsync = %v", err)
	}
	// Rename faults.
	inj.Arm([]Window{{Op: OpDiskRename, Kind: EIO, Count: 1}})
	if err := fs.Rename(name, name+"2"); !errors.Is(err, ErrInjected) {
		t.Errorf("rename = %v", err)
	}
	if err := fs.Rename(name, name+"2"); err != nil {
		t.Errorf("healed rename = %v", err)
	}
	// Reads and truncates pass through even with write faults armed —
	// the repair paths must never be faulted.
	inj.Arm([]Window{{Op: OpDiskWrite, Kind: EIO, Count: 99}})
	if _, err := fs.ReadFile(name + "2"); err != nil {
		t.Errorf("read under write faults = %v", err)
	}
	if err := fs.Truncate(name+"2", 0); err != nil {
		t.Errorf("truncate under write faults = %v", err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Errorf("mkdir under write faults = %v", err)
	}
}

// TestFaultFSJournalHeals proves the end-to-end heal loop: a journal
// under a fault FS survives an ENOSPC burst via its append rollback,
// and a Probe after the burst leaves it fully appendable.
func TestFaultFSJournalHeals(t *testing.T) {
	dir := t.TempDir()
	inj := New()
	j, rec, err := journal.Open(dir, journal.Options{FS: NewFS(inj, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !rec.Empty() {
		t.Fatal("fresh dir not empty")
	}
	if _, err := j.Append([]byte(`{"k":"a"}`)); err != nil {
		t.Fatal(err)
	}
	inj.Arm([]Window{{Op: OpDiskWrite, Kind: ENOSPC, Count: 1}})
	if _, err := j.Append([]byte(`{"k":"b"}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted append = %v", err)
	}
	if err := j.Probe(); err != nil {
		t.Fatalf("probe after heal = %v", err)
	}
	if _, err := j.Append([]byte(`{"k":"b"}`)); err != nil {
		t.Fatalf("append after heal = %v", err)
	}
	j.Close()

	j2, rec2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec2.Records) != 2 || rec2.Truncated {
		t.Errorf("recovered %d records (truncated=%v), want 2 clean", len(rec2.Records), rec2.Truncated)
	}
}

func TestStallSubscriberNeverBlocksPublisher(t *testing.T) {
	fire := telemetry.NewFirehose()
	stall := Stall(fire)
	defer stall.Close()
	// Publish far more events than the one-slot buffer holds; the
	// firehose's drop-oldest contract must keep this loop from blocking.
	for n := 0; n < 100; n++ {
		fire.Publish("test", "tick", nil)
	}
	if d := stall.Dropped(); d == 0 {
		t.Error("stalled subscriber dropped nothing")
	}
}
