// Package fault is a deterministic, seed-driven fault injector for the
// repo's three I/O boundaries: journal disk operations (through the
// journal.FS seam), federation region calls and gossip, and telemetry
// subscriber stalls. It exists so the degradation machinery — the
// exchange's degraded quiesce, the federation's circuit breaker, the
// journal's append rollback — is exercised by scripted, reproducible
// schedules instead of hope.
//
// The model is a finite set of armed Windows: each names an operation
// boundary (Op), an optional scope (a path substring for disk ops, a
// region name for region ops), a fault Kind, and how many times it
// fires. Matching consumes the window's count under one mutex in call
// order, so a given schedule injects the same faults at the same
// operations on every run with the same workload — which is what lets
// the scenario engine demand that a run whose faults all heal
// fingerprint-matches the fault-free run bit-identically. Chaos mode
// (NewChaos) layers seeded-random windows on top each epoch; two runs
// with the same chaos seed still see identical schedules.
//
// Every injection is published to the telemetry firehose under its own
// Source ("fault"), so an operator watching the SSE stream sees faults
// land in real time and tests can count them; the injector never
// journals anything (injections are operational noise, not market
// history).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"time"

	"clustermarket/internal/telemetry"
)

// Op identifies one injectable operation boundary.
type Op string

const (
	// OpDiskWrite faults WAL frame and snapshot/header writes.
	OpDiskWrite Op = "disk-write"
	// OpDiskFsync faults fsyncs of the WAL, snapshots, and directories.
	OpDiskFsync Op = "disk-fsync"
	// OpDiskRename faults the tmp→final renames that install snapshots
	// and rotated WALs.
	OpDiskRename Op = "disk-rename"
	// OpRegionOrder faults a region-bound order submission.
	OpRegionOrder Op = "region-order"
	// OpRegionGossip faults a region's price-board gossip (the quote is
	// lost; the board goes stale).
	OpRegionGossip Op = "region-gossip"
	// OpRegionSettle faults a region's settlement round before it runs.
	OpRegionSettle Op = "region-settle"
)

// Kind is the flavor of an injected fault.
type Kind string

const (
	// ENOSPC fails the operation with syscall.ENOSPC.
	ENOSPC Kind = "enospc"
	// EIO fails the operation with syscall.EIO.
	EIO Kind = "eio"
	// ShortWrite writes only half the buffer, then fails — the torn
	// write the journal's rollback must make unreadable.
	ShortWrite Kind = "short-write"
	// Latency delays the operation briefly, then lets it succeed.
	Latency Kind = "latency"
	// Unreachable fails a region call as if the region were partitioned
	// away.
	Unreachable Kind = "unreachable"
)

// Window arms Count injections of Kind at Op. Scope narrows the match:
// for disk ops a substring of the file path (so a schedule can target
// one region's journal), for region ops the region name; "" matches
// anything.
type Window struct {
	Op    Op
	Scope string
	Kind  Kind
	Count int
}

// ErrInjected is the base of every error the injector produces; test
// with errors.Is to tell an injected fault from organic failure.
var ErrInjected = errors.New("fault: injected")

// ErrUnreachable is the injected region-partition error.
var ErrUnreachable = fmt.Errorf("%w: region unreachable", ErrInjected)

var (
	errENOSPC = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	errEIO    = fmt.Errorf("%w: %w", ErrInjected, syscall.EIO)
)

// EventSource is the firehose Source the injector publishes under. The
// scenario report reconstructor ignores unknown sources, so fault
// events ride the same stream as market events without perturbing
// fingerprint reconstruction.
const EventSource = "fault"

// EvFaultInjected is the kind of every injection event.
const EvFaultInjected = "fault-injected"

// Injection is the telemetry payload of one injected fault.
type Injection struct {
	Op    Op     `json:"op"`
	Scope string `json:"scope,omitempty"`
	Kind  Kind   `json:"kind"`
	// Seq is the injector-local 1-based injection count.
	Seq uint64 `json:"seq"`
}

// latencyDelay is how long a Latency fault stalls its operation: long
// enough to register in the fsync-latency histogram, short enough that
// soak runs stay fast.
const latencyDelay = time.Millisecond

// Injector consumes armed fault windows. A nil *Injector is a valid
// no-op: every check reports "no fault", so production paths hold a
// possibly-nil injector and check unconditionally. The mutex is a leaf:
// nothing is called while it is held.
type Injector struct {
	mu       sync.Mutex
	windows  []Window
	rng      *rand.Rand // non-nil = chaos mode
	injected uint64

	fire *telemetry.Firehose
}

// New returns an injector with no windows armed.
func New() *Injector { return &Injector{} }

// NewChaos returns an injector that, in addition to any scripted
// windows, arms seeded-random windows on each ArmEpoch call. The same
// seed yields the same schedule.
func NewChaos(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// AttachTelemetry publishes every injection to the firehose.
func (i *Injector) AttachTelemetry(f *telemetry.Firehose) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.fire = f
	i.mu.Unlock()
}

// Chaos reports whether the injector arms random windows.
func (i *Injector) Chaos() bool { return i != nil && i.rng != nil }

// Arm replaces the armed windows.
func (i *Injector) Arm(ws []Window) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.windows = append(i.windows[:0], ws...)
	i.mu.Unlock()
}

// ArmEpoch replaces the armed windows with the scripted set for this
// epoch and, in chaos mode, layers seeded-random windows on top.
// Replacing (not appending) keeps runs that never consume a window —
// an in-memory run armed with disk faults, say — from accumulating
// stale schedules. Counts stay small (≤3 per window) so the bounded
// inline retries in the journal's callers heal every burst.
func (i *Injector) ArmEpoch(epoch int, regions []string, scripted []Window) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.windows = append(i.windows[:0], scripted...)
	if i.rng == nil {
		return
	}
	if i.rng.Float64() < 0.5 {
		diskOps := [...]Op{OpDiskWrite, OpDiskFsync, OpDiskRename}
		diskKinds := [...]Kind{ENOSPC, EIO, ShortWrite, Latency}
		i.windows = append(i.windows, Window{
			Op:    diskOps[i.rng.Intn(len(diskOps))],
			Kind:  diskKinds[i.rng.Intn(len(diskKinds))],
			Count: 1 + i.rng.Intn(3),
		})
	}
	if len(regions) > 0 && i.rng.Float64() < 0.5 {
		regionOps := [...]Op{OpRegionOrder, OpRegionGossip, OpRegionSettle}
		regionKinds := [...]Kind{Unreachable, Latency}
		i.windows = append(i.windows, Window{
			Op:    regionOps[i.rng.Intn(len(regionOps))],
			Scope: regions[i.rng.Intn(len(regions))],
			Kind:  regionKinds[i.rng.Intn(len(regionKinds))],
			Count: 1 + i.rng.Intn(2),
		})
	}
}

// Injected returns how many faults have fired so far.
func (i *Injector) Injected() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// Pending returns the total remaining count across armed windows.
func (i *Injector) Pending() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, w := range i.windows {
		n += w.Count
	}
	return n
}

// take consumes one matching window count, if any. The telemetry
// publish happens outside the mutex so the injector's lock stays a
// leaf.
func (i *Injector) take(op Op, scope string) (Kind, bool) {
	if i == nil {
		return "", false
	}
	i.mu.Lock()
	var kind Kind
	hit := false
	var seq uint64
	for w := range i.windows {
		win := &i.windows[w]
		if win.Count <= 0 || win.Op != op {
			continue
		}
		if win.Scope != "" && !matchScope(op, scope, win.Scope) {
			continue
		}
		win.Count--
		i.injected++
		kind, hit, seq = win.Kind, true, i.injected
		break
	}
	fire := i.fire
	i.mu.Unlock()
	if hit && fire.Active() {
		fire.Publish(EventSource, EvFaultInjected, &Injection{Op: op, Scope: scope, Kind: kind, Seq: seq})
	}
	return kind, hit
}

// matchScope: disk ops match by path substring, region ops by exact
// region name.
func matchScope(op Op, scope, want string) bool {
	switch op {
	case OpDiskWrite, OpDiskFsync, OpDiskRename:
		return strings.Contains(scope, want)
	default:
		return scope == want
	}
}

// Region consumes an armed fault for a region-facing operation and
// returns the injected error, or nil when nothing is armed. Latency
// faults stall briefly and then succeed; everything else reports the
// region unreachable.
func (i *Injector) Region(op Op, region string) error {
	kind, ok := i.take(op, region)
	if !ok {
		return nil
	}
	if kind == Latency {
		time.Sleep(latencyDelay)
		return nil
	}
	return fmt.Errorf("fault: %s %s: %w", op, region, ErrUnreachable)
}

// Stall attaches a deliberately never-drained one-slot subscriber to
// the firehose: the telemetry-stall fault. The firehose's drop-oldest
// contract keeps publishers non-blocking regardless; the returned
// subscription's Dropped() measures what a stalled consumer would have
// lost. Close it to detach.
func Stall(f *telemetry.Firehose) *telemetry.Subscription {
	return f.Subscribe(1)
}
