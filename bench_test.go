package clustermarket_test

// Benchmark harness: one benchmark per paper table/figure (see the
// experiment index in DESIGN.md) plus ablations over the design choices
// called out there. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks that regenerate figures report shape metrics (price ratios,
// rounds, stranding) via b.ReportMetric alongside the timing, so a bench
// run doubles as a smoke check of the reproduced results.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/optimize"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/sim"
	"clustermarket/internal/telemetry"
)

// benchConfig is a small but structurally faithful world: enough clusters
// for hot/cold skew, enough teams for competition.
func benchConfig(seed int64) sim.Config {
	return sim.Config{
		Seed:               seed,
		Clusters:           8,
		MachinesPerCluster: 10,
		Teams:              30,
	}
}

// BenchmarkFig2ReserveCurves regenerates Figure 2 (FIG2).
func BenchmarkFig2ReserveCurves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curves := sim.Fig2(100)
		if len(curves) != 3 {
			b.Fatal("bad curve count")
		}
	}
}

// BenchmarkFig6PriceRatios regenerates Figure 6 (FIG6): world build, one
// market auction, price/fixed-price ratios.
func BenchmarkFig6PriceRatios(b *testing.B) {
	b.ReportAllocs()
	var hot, cold float64
	for i := 0; i < b.N; i++ {
		d, err := sim.Fig6(benchConfig(100 + int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		hot, cold = d.CongestionPriceCorrelation(0.75, 0.4)
	}
	b.ReportMetric(hot, "hotRatio")
	b.ReportMetric(cold, "coldRatio")
}

// BenchmarkFig7SettledUtilization regenerates Figure 7 (FIG7) over two
// sequential auctions.
func BenchmarkFig7SettledUtilization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := sim.Fig7(benchConfig(200+int64(i)), 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Groups) == 0 {
			b.Fatal("no boxplot groups")
		}
	}
}

// BenchmarkTable1BidPremiums regenerates Table I (TAB1): three sequential
// auctions with evolving bidder sophistication.
func BenchmarkTable1BidPremiums(b *testing.B) {
	b.ReportAllocs()
	var medianDrop float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table1(benchConfig(300+int64(i)), 3)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Median > 0 {
			medianDrop = rows[2].Median / rows[0].Median
		}
	}
	b.ReportMetric(medianDrop, "medianRatioA3overA1")
}

// BenchmarkBaselineComparison regenerates the BASE experiment: fixed
// price vs manual quota vs proportional share vs market.
func BenchmarkBaselineComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Baseline(benchConfig(400 + int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkMigration regenerates the MIGR experiment over three auctions.
func BenchmarkMigration(b *testing.B) {
	b.ReportAllocs()
	var coldShare float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Migration(benchConfig(500+int64(i)), 3)
		if err != nil {
			b.Fatal(err)
		}
		coldShare = rows[len(rows)-1].ColdShare
	}
	b.ReportMetric(coldShare, "coldShare")
}

// runSynthetic runs one synthetic pure market to convergence.
func runSynthetic(b *testing.B, seed int64, users, pools int, parallel bool) *core.Result {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg, bids := sim.SyntheticMarket(rng, users, pools)
	start := reg.Zero()
	for i := range start {
		start[i] = 0.5
	}
	a, err := core.NewAuction(reg, bids, core.Config{
		Start:    start,
		Policy:   core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
		Parallel: parallel,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkClockAuctionPaperScale is the SCALE experiment's headline
// point: the paper's Python simulator took "a few minutes" at 100 bidders
// × 100 resources; optimized compiled code should be orders of magnitude
// faster.
func BenchmarkClockAuctionPaperScale(b *testing.B) {
	b.ReportAllocs()
	var rounds int
	for i := 0; i < b.N; i++ {
		res := runSynthetic(b, 42, 100, 100, false)
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkClockAuctionUsers sweeps the user count at R=100 (SCALE).
func BenchmarkClockAuctionUsers(b *testing.B) {
	b.ReportAllocs()
	for _, users := range []int{25, 100, 400} {
		b.Run(benchName("U", users), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSynthetic(b, 42, users, 100, false)
			}
		})
	}
}

// BenchmarkClockAuctionPools sweeps the pool count at U=100 (SCALE).
func BenchmarkClockAuctionPools(b *testing.B) {
	b.ReportAllocs()
	for _, pools := range []int{25, 100, 400} {
		b.Run(benchName("R", pools), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSynthetic(b, 42, 100, pools, false)
			}
		})
	}
}

// sparsePlanetMarket builds the sparse-planet workload: `pools`
// single-dimension pools and `users` pure buyers whose bundles each
// touch only a handful of pools. The planet has the paper's hot/cold
// shape: a broad background of modest bidders spread across every pool
// (it clears within the first few dozen rounds), plus a small cohort of
// deep-pocketed contenders fighting over four hot pools, whose price war
// drives a long clock tail during which only those pools move. Most
// bidders' choices provably cannot change in a tail round — exactly
// what the incremental engine exploits. The operator offers half of the
// aggregate first-choice demand, so the clock genuinely rations
// everywhere.
func sparsePlanetMarket(seed int64, users, pools int) (*resource.Registry, []*core.Bid) {
	rng := rand.New(rand.NewSource(seed))
	reg := resource.NewRegistry()
	for i := 0; i < pools; i++ {
		reg.Add(resource.Pool{Cluster: benchName("sp", i), Dim: resource.CPU})
	}
	const hotPools = 4
	contenders := users / 32
	supply := reg.Zero()
	bids := make([]*core.Bid, 0, users+1)
	for u := 0; u < users-contenders; u++ {
		nAlt := rng.Intn(2) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		for a := 0; a < nAlt; a++ {
			v := reg.Zero()
			for k := 0; k < rng.Intn(3)+2; k++ {
				v[rng.Intn(pools)] = float64(rng.Intn(16) + 1)
			}
			bundles = append(bundles, v)
		}
		bids = append(bids, &core.Bid{
			User:    benchName("u", u),
			Bundles: bundles,
			Limit:   float64(rng.Intn(400) + 25),
		})
	}
	for c := 0; c < contenders; c++ {
		v := reg.Zero()
		v[rng.Intn(hotPools)] = float64(rng.Intn(8) + 8)
		bids = append(bids, &core.Bid{
			User:    benchName("hot", c),
			Bundles: []resource.Vector{v},
			Limit:   float64(rng.Intn(4000) + 2000),
		})
	}
	for _, b := range bids {
		supply.AddInto(b.Bundles[0])
	}
	for i := range supply {
		supply[i] = -supply[i] / 2
	}
	bids = append(bids, &core.Bid{User: "op", Limit: -0.001, Bundles: []resource.Vector{supply}})
	return reg, bids
}

// BenchmarkSparsePlanetEngines is the PR 3 headline, now measured in its
// steady state: the per-round cost of the dense reference engine vs the
// incremental engine on the sparse-planet workload (256 pools × 2048
// bidders, a handful of non-zero components each). Both engines produce
// bit-identical results (enforced by TestIncrementalMatchesDenseDifferential);
// ns/round is the comparison metric, since the engines run the identical
// number of rounds by construction.
//
// A warm-up run outside the timed window sizes the auction's scratch
// buffers and the recycled Result, so the timed RunReusing iterations
// measure the pure round loop — allocs/op must read 0: a steady-state
// clock round performs no heap allocations at all.
func BenchmarkSparsePlanetEngines(b *testing.B) {
	for _, eng := range []core.Engine{core.EngineDense, core.EngineIncremental} {
		b.Run(eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			reg, bids := sparsePlanetMarket(9, 2048, 256)
			start := reg.Zero()
			for i := range start {
				start[i] = 0.5
			}
			// Bid validation and proxy construction are one-time,
			// engine-independent costs; the auction is built outside the
			// timed loop so ns/round measures the round loop itself.
			a, err := core.NewAuction(reg, bids, core.Config{
				Start:  start,
				Policy: core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
				Engine: eng,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := a.Run() // warm-up: scratch + Result sized here
			if err != nil {
				b.Fatal(err)
			}
			var rounds, totalRounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = a.RunReusing(res)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
				totalRounds += res.Rounds
			}
			b.StopTimer()
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalRounds), "ns/round")
		})
	}
}

// sparseRegionalPlanetMarket is the sparse-planet workload sharded into
// k independent sub-markets: the pools split into k contiguous regions,
// every buyer's bundles stay inside one region, and the operator offers
// per-region supply — so the bidder–pool graph has exactly k connected
// components, each with its own hot-pool price war. This is the
// decomposition-friendly topology BenchmarkPartitionedPlanetEngines
// measures.
func sparseRegionalPlanetMarket(seed int64, users, pools, k int) (*resource.Registry, []*core.Bid) {
	rng := rand.New(rand.NewSource(seed))
	reg := resource.NewRegistry()
	for i := 0; i < pools; i++ {
		reg.Add(resource.Pool{Cluster: benchName("sp", i), Dim: resource.CPU})
	}
	const hotPools = 4
	per := pools / k
	contenders := users / 32
	supply := reg.Zero()
	bids := make([]*core.Bid, 0, users+k)
	for u := 0; u < users-contenders; u++ {
		base := rng.Intn(k) * per
		nAlt := rng.Intn(2) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		for a := 0; a < nAlt; a++ {
			v := reg.Zero()
			for j := 0; j < rng.Intn(3)+2; j++ {
				v[base+rng.Intn(per)] = float64(rng.Intn(16) + 1)
			}
			bundles = append(bundles, v)
		}
		bids = append(bids, &core.Bid{
			User:    benchName("u", u),
			Bundles: bundles,
			Limit:   float64(rng.Intn(400) + 25),
		})
	}
	for c := 0; c < contenders; c++ {
		v := reg.Zero()
		v[rng.Intn(k)*per+rng.Intn(hotPools)] = float64(rng.Intn(8) + 8)
		bids = append(bids, &core.Bid{
			User:    benchName("hot", c),
			Bundles: []resource.Vector{v},
			Limit:   float64(rng.Intn(4000) + 2000),
		})
	}
	for _, b := range bids {
		supply.AddInto(b.Bundles[0])
	}
	for r := 0; r < k; r++ {
		v := reg.Zero()
		offered := false
		for i := r * per; i < (r+1)*per; i++ {
			if supply[i] > 0 {
				v[i] = -supply[i] / 2
				offered = true
			}
		}
		if offered {
			bids = append(bids, &core.Bid{User: benchName("op", r), Limit: -0.001, Bundles: []resource.Vector{v}})
		}
	}
	return reg, bids
}

// BenchmarkPartitionedPlanetEngines is the PR 10 headline: the
// sparse-planet workload with k independent hot components, cleared
// merged (PartitionOff) vs decomposed (PartitionAuto, serial) vs
// decomposed with the component clocks fanned out (PartitionAuto +
// Parallel). Results are bit-identical across all three by the
// decomposition equivalence contract (TestPartitionedMatchesMergedDifferential);
// the win is wall-clock: a decomposed component stops when *it* clears,
// so cold components exit after a few dozen rounds instead of being
// dragged through every hot component's full price-war tail, and under
// Parallel the k tails overlap.
//
// Caveat as in the PR 4 shard benchmarks: this container pins
// GOMAXPROCS to 1, so the parallel variant measures goroutine overhead
// here and only shows its speedup on multi-core hardware. The
// serial-decomposed variant's gain (early exit for cleared components)
// is visible regardless. allocs/op must read 0 for the off and serial
// variants; the parallel fan-out allocates its goroutine stacks.
func BenchmarkPartitionedPlanetEngines(b *testing.B) {
	const kComponents = 8
	type variant struct {
		name     string
		mode     core.PartitionMode
		parallel bool
	}
	variants := []variant{
		{"off", core.PartitionOff, false},
		{"auto", core.PartitionAuto, false},
		{"auto-parallel", core.PartitionAuto, true},
	}
	for _, eng := range []core.Engine{core.EngineDense, core.EngineIncremental} {
		for _, v := range variants {
			b.Run(eng.String()+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				reg, bids := sparseRegionalPlanetMarket(9, 2048, 256, kComponents)
				start := reg.Zero()
				for i := range start {
					start[i] = 0.5
				}
				a, err := core.NewAuction(reg, bids, core.Config{
					Start:     start,
					Policy:    core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
					Engine:    eng,
					Partition: v.mode,
					Parallel:  v.parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := a.Run() // warm-up: scratch + Result sized here
				if err != nil {
					b.Fatal(err)
				}
				if v.mode == core.PartitionAuto && a.Components() != kComponents {
					b.Fatalf("decomposed into %d components, want %d", a.Components(), kComponents)
				}
				var rounds int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err = a.RunReusing(res)
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Rounds
				}
				b.StopTimer()
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(a.Components()), "components")
			})
		}
	}
}

// BenchmarkAblationIncrementPolicies compares the Section III.C.2 price
// update rules on an identical market: time per full auction plus rounds
// to converge.
func BenchmarkAblationIncrementPolicies(b *testing.B) {
	b.ReportAllocs()
	policies := []core.IncrementPolicy{
		core.Additive{Alpha: 0.02},
		core.Capped{Alpha: 0.02, Delta: 0.25, MinStep: 0.001},
		core.Proportional{Alpha: 0.02, Frac: 0.1, Base: 1},
		core.CostNormalized{Alpha: 0.02, DeltaFrac: 0.25},
	}
	for _, pol := range policies {
		b.Run(pol.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var rounds int
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(77))
				reg, bids := sim.SyntheticMarket(rng, 100, 50)
				start := reg.Zero()
				for j := range start {
					start[j] = 0.5
				}
				a, err := core.NewAuction(reg, bids, core.Config{Start: start, Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				res, err := a.Run()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationReserveCurves compares the three Figure 2 weighting
// functions as the market's reserve curve, reporting the hot-pool price
// ratio each produces.
func BenchmarkAblationReserveCurves(b *testing.B) {
	b.ReportAllocs()
	curves := []struct {
		name string
		fn   reserve.WeightFn
	}{
		{"phi1-exp-steep", reserve.ExpSteep},
		{"phi2-exp-mild", reserve.ExpMild},
		{"phi3-hyperbolic", reserve.Hyperbolic},
	}
	for _, c := range curves {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var hot float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(600)
				cfg.Weight = c.fn
				d, err := sim.Fig6(cfg)
				if err != nil {
					b.Fatal(err)
				}
				hot, _ = d.CongestionPriceCorrelation(0.75, 0.4)
			}
			b.ReportMetric(hot, "hotRatio")
		})
	}
}

// BenchmarkAblationParallelProxies measures serial vs worker-pool proxy
// evaluation on a large market.
func BenchmarkAblationParallelProxies(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"serial", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSynthetic(b, 42, 1200, 100, mode.parallel)
			}
		})
	}
}

// BenchmarkAblationSchedulers compares the bin-packing policies in the
// cluster substrate, reporting CPU stranding.
func BenchmarkAblationSchedulers(b *testing.B) {
	b.ReportAllocs()
	for _, sched := range cluster.Schedulers() {
		b.Run(sched.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var stranding float64
			for i := 0; i < b.N; i++ {
				c := cluster.New("bench", sched)
				c.AddMachines(32, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
				rng := rand.New(rand.NewSource(88))
				for t := 0; t < 400; t++ {
					req := cluster.Usage{
						CPU:  1 + rng.Float64()*7,
						RAM:  2 + rng.Float64()*30,
						Disk: 0.2 + rng.Float64()*2,
					}
					id := benchName("t", t)
					if err := c.Place(cluster.Task{ID: id, Team: "bench", Req: req}); err != nil {
						break
					}
				}
				stranding = c.Stranding().CPU
			}
			b.ReportMetric(stranding, "cpuStranding")
		})
	}
}

// BenchmarkAblationOptimizerVsClock compares the clock auction against
// the explicitly-optimizing allocators from Section III.C.4's discussion:
// time per allocation plus the welfare each achieves (reported as the
// `welfare` metric; the clock trades some of it away for fair uniform
// prices).
func BenchmarkAblationOptimizerVsClock(b *testing.B) {
	b.ReportAllocs()
	build := func() (*core.Auction, []*core.Bid, func() (float64, error)) {
		rng := rand.New(rand.NewSource(31))
		reg, bids := sim.SyntheticMarket(rng, 100, 30)
		reserve := reg.Zero()
		for i := range reserve {
			reserve[i] = 0.5
		}
		a, err := core.NewAuction(reg, bids, core.Config{
			Start:  reserve,
			Policy: core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
		})
		if err != nil {
			b.Fatal(err)
		}
		greedy := func() (float64, error) {
			r, err := optimize.Greedy(reg, bids, reserve, optimize.TotalSurplus)
			if err != nil {
				return 0, err
			}
			return r.Welfare, nil
		}
		return a, bids, greedy
	}
	b.Run("clock", func(b *testing.B) {
		b.ReportAllocs()
		var welfare float64
		for i := 0; i < b.N; i++ {
			a, bids, _ := build()
			res, err := a.Run()
			if err != nil {
				b.Fatal(err)
			}
			reserve := make([]float64, len(res.Prices))
			for j := range reserve {
				reserve[j] = 0.5
			}
			welfare, err = optimize.EvaluateWelfare(bids, res.Allocations, reserve, optimize.TotalSurplus)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(welfare, "welfare")
	})
	b.Run("greedy-optimizer", func(b *testing.B) {
		b.ReportAllocs()
		var welfare float64
		for i := 0; i < b.N; i++ {
			_, _, greedy := build()
			w, err := greedy()
			if err != nil {
				b.Fatal(err)
			}
			welfare = w
		}
		b.ReportMetric(welfare, "welfare")
	})
}

// BenchmarkClockProgression regenerates the clock-progression figure.
func BenchmarkClockProgression(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := sim.ClockProgression(benchConfig(800+int64(i)), 3)
		if err != nil {
			b.Fatal(err)
		}
		if d.Rounds < 2 {
			b.Fatal("degenerate clock")
		}
	}
}

// BenchmarkWebSummaryRender measures the market summary render path
// (Figure 3).
func BenchmarkWebSummaryRender(b *testing.B) {
	b.ReportAllocs()
	w, err := sim.NewWorld(benchConfig(700))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.RunAuction(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := w.Exchange.Summary()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty summary")
		}
	}
}

// benchFleet builds a fleet of `clusters` uniform clusters named
// "<prefix>r1"…, with the first filled hot for price contrast.
func benchFleet(b *testing.B, prefix string, clusters int) *cluster.Fleet {
	b.Helper()
	f := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		c := cluster.New(benchName(prefix+"r", i), nil)
		c.AddMachines(20, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := f.AddCluster(c); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(12))
	if err := f.FillToUtilization(rng, prefix+"r1", cluster.Usage{CPU: 0.8, RAM: 0.8, Disk: 0.8}); err != nil {
		b.Fatal(err)
	}
	return f
}

// benchExchange builds a thread-safe exchange over a hot/cold fleet of
// `clusters` clusters with `teams` funded accounts ("bt0", "bt1", …).
func benchExchange(b *testing.B, teams, clusters int) *market.Exchange {
	b.Helper()
	ex, err := market.NewExchange(benchFleet(b, "", clusters), market.Config{InitialBudget: 1e12})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < teams; i++ {
		if err := ex.OpenAccount(benchName("bt", i)); err != nil {
			b.Fatal(err)
		}
	}
	return ex
}

// The throughput benchmarks (BenchmarkEpochLoop vs the
// BenchmarkFederatedSubmit sweep) run the same planet-wide workload over
// the same planet-wide fleet — planetCold cold clusters p1…p12 plus one
// hot cluster h1 — structured either as one monolithic market or as R
// regional markets partitioning the clusters. Every order is a global
// substitution bundle ("one batch-compute worker in ANY cold cluster",
// the paper's Section II XOR at planetary width): the monolithic
// auctioneer carries all 12 alternatives of every order through every
// clock round, while the federation's price board books only the
// cheapest region's alternatives and touches the rest only on failover.
const planetCold = 12

// benchColdNames lists the planet's cold clusters.
func benchColdNames() []string {
	out := make([]string, planetCold)
	for i := range out {
		out[i] = benchName("p", i+1)
	}
	return out
}

// benchTargets is order i's XOR alternative set: a rotating window of
// four cold clusters. Rotation matters: if every order carried the
// identical alternative set, all active proxies would chase the same
// cheapest cluster in lockstep every round and the clock would have to
// price out everything beyond one cluster's capacity. Under the
// round-robin region partition, consecutive clusters land in different
// regions, so these orders are genuinely cross-region for every sweep
// point.
func benchTargets(i int) []string {
	out := make([]string, 4)
	for k := range out {
		out[k] = benchName("p", 1+(i+k)%planetCold)
	}
	return out
}

// benchPlanetFleet builds the slice of the planet owned by region idx of
// R: every R-th cold cluster, plus the hot cluster h1 in region 0.
func benchPlanetFleet(b *testing.B, idx, regions int) *cluster.Fleet {
	b.Helper()
	f := cluster.NewFleet()
	add := func(name string) {
		c := cluster.New(name, nil)
		// Big clusters: the throughput benchmarks measure the market
		// machinery, so the planet should rarely run out of sellable
		// capacity pressure rations the margin without mass starvation (which
		// just multiplies noisy failover retries).
		c.AddMachines(100, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := f.AddCluster(c); err != nil {
			b.Fatal(err)
		}
	}
	for i := idx; i < planetCold; i += regions {
		add(benchName("p", i+1))
	}
	if idx == 0 {
		add("h1")
		rng := rand.New(rand.NewSource(12))
		if err := f.FillToUtilization(rng, "h1", cluster.Usage{CPU: 0.8, RAM: 0.8, Disk: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// benchPlanetExchange is the monolithic structuring: one exchange over
// the whole planet.
func benchPlanetExchange(b *testing.B, teams int) *market.Exchange {
	b.Helper()
	ex, err := market.NewExchange(benchPlanetFleet(b, 0, 1), market.Config{InitialBudget: 1e12})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < teams; i++ {
		if err := ex.OpenAccount(benchName("bt", i)); err != nil {
			b.Fatal(err)
		}
	}
	return ex
}

// BenchmarkConcurrentSubmit measures order-entry throughput with all
// CPUs submitting into one exchange at once — the web tier's hot path
// now that handlers are no longer serialized behind a server mutex.
func BenchmarkConcurrentSubmit(b *testing.B) {
	b.ReportAllocs()
	ex := benchExchange(b, 16, 2)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		team := benchName("bt", int(worker.Add(1)-1)%16)
		for pb.Next() {
			if _, err := ex.SubmitProduct(team, "batch-compute", 1, []string{"r2"}, 5); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(len(ex.Orders())), "orders")
}

// BenchmarkParallelSubmit is the sharded-intake scaling benchmark: all
// CPUs submit XOR product orders into one exchange at once, with the
// book striped so submits in different stripes never share a lock. Teams
// hash across account stripes and orders round-robin across book
// stripes, so the only shared write is one atomic counter. Run with
//
//	go test -run xxx -bench ParallelSubmit -cpu 1,4,8 .
//
// to sweep the worker count; on multicore hardware ops/sec should rise
// with -cpu where the PR 3 book was flat (every submit fought one
// mutex). allocs/op is reported so regressions on the admission path's
// per-order allocation count (bid clone + bundle vectors) are visible.
func BenchmarkParallelSubmit(b *testing.B) {
	b.ReportAllocs()
	ex := benchExchange(b, 16, 8)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1) - 1)
		team := benchName("bt", w%16)
		i := 0
		for pb.Next() {
			cl := benchName("r", 1+(i+w)%8)
			if _, err := ex.SubmitProduct(team, "batch-compute", 1, []string{cl}, 5); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(ex.OpenOrderCount()), "orders")
}

// BenchmarkEpochLoop measures the full continuous-trading pipeline
// (admit → batch → clock → settle) through one monolithic planet-wide
// exchange: globally substitutable orders are admitted, then the book
// drains through epoch ticks until every order reaches a terminal
// state. settled/s — orders settled as Won per wall-clock second of the
// whole pipeline — is the single-exchange baseline for the
// BenchmarkFederatedSubmit sweep; it reflects both the auctioneer's
// speed and how much of the demand one global clock actually fills.
// Run with a fixed -benchtime (the CI smoke uses 1x); a time-based
// benchtime lets the book outgrow the auctioneer.
func BenchmarkEpochLoop(b *testing.B) {
	b.ReportAllocs()
	benchEpochLoop(b, benchPlanetExchange(b, 16))
}

// BenchmarkEpochLoopDurable is BenchmarkEpochLoop with the write-ahead
// log attached: every account, order, auction outcome, and settlement is
// journaled before it is applied. fsync-every-1 fsyncs each appended
// batch — the durability ceiling — while fsync-every-16 shows what group
// commit buys back. Compare settled/s against BenchmarkEpochLoop to read
// the durability tax; BenchmarkEpochLoop itself must not move (a nil
// journal is a nil check on the hot path, nothing more).
func BenchmarkEpochLoopDurable(b *testing.B) {
	for _, window := range []int{1, 16} {
		b.Run(fmt.Sprintf("fsync-every-%d", window), func(b *testing.B) {
			b.ReportAllocs()
			j, rec, err := journal.Open(b.TempDir(), journal.Options{FsyncEvery: window})
			if err != nil {
				b.Fatal(err)
			}
			if !rec.Empty() {
				b.Fatal("fresh journal dir is not empty")
			}
			defer j.Close()
			ex, err := market.NewExchange(benchPlanetFleet(b, 0, 1),
				market.Config{InitialBudget: 1e12, Journal: j})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if err := ex.OpenAccount(benchName("bt", i)); err != nil {
					b.Fatal(err)
				}
			}
			benchEpochLoop(b, ex)
		})
	}
}

// benchEpochLoop drives the shared submit-then-drain pipeline for the
// epoch-loop benchmarks against an already-built planet exchange.
func benchEpochLoop(b *testing.B, ex *market.Exchange) {
	loop, err := market.NewLoop(ex, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}

	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1) - 1)
		team := benchName("bt", w%16)
		i := 0
		for pb.Next() {
			limit := float64(5 + (i*7+w*13)%60)
			if _, err := ex.SubmitProduct(team, "batch-compute", 1, benchTargets(i), limit); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	// Drain inside the timed window via explicit epoch ticks: every
	// admitted order must settle (won, lost, or retired), so the
	// measurement covers the auctioneer, not just order admission —
	// deterministic epoch boundaries keep runs comparable.
	for i := 0; ex.OpenOrderCount() > 0; i++ {
		if i >= 1000 {
			b.Fatal("book did not drain")
		}
		if _, err := loop.Tick(); err != nil && !errors.Is(err, core.ErrNoConvergence) {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := loop.Stats()
	b.ReportMetric(float64(s.Auctions), "auctions")
	b.ReportMetric(float64(s.SettledOrders), "wonOrders")
	// settled/s counts orders settled as Won per wall-clock second (the
	// LoopStats.SettledOrders sense): successfully provisioned demand,
	// not just orders reaching a terminal state.
	b.ReportMetric(float64(s.SettledOrders)/b.Elapsed().Seconds(), "settled/s")
}

// TestFirehoseNoSubscriberAllocationFree is the firehose's hot-path
// guard: an exchange with a firehose attached but no subscriber must
// submit orders with exactly the same number of heap allocations as an
// exchange with no firehose at all. Publish with zero subscribers is a
// nil check plus one atomic load — no event materialization, no
// payload boxing.
func TestFirehoseNoSubscriberAllocationFree(t *testing.T) {
	build := func(fire *telemetry.Firehose) *market.Exchange {
		f := cluster.NewFleet()
		c := cluster.New("r1", nil)
		c.AddMachines(50, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		ex, err := market.NewExchange(f, market.Config{InitialBudget: 1e12, Telemetry: fire})
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.OpenAccount("bt0"); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	measure := func(ex *market.Exchange) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := ex.SubmitProduct("bt0", "batch-compute", 1, []string{"r1"}, 5); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := measure(build(nil))
	wired := measure(build(telemetry.NewFirehose()))
	if wired != bare {
		t.Fatalf("submit with unwatched firehose allocates %.1f/op, without %.1f/op — the no-subscriber path must be allocation-free", wired, bare)
	}
}

// BenchmarkEpochLoopFirehose is BenchmarkEpochLoop with the telemetry
// firehose attached: the no-subscriber run must be indistinguishable
// from the baseline (publish is a nil check plus an atomic load), and
// the subscriber run prices the full event pipeline — materialization,
// publish, and a concurrent drain — against the same workload.
func BenchmarkEpochLoopFirehose(b *testing.B) {
	for _, mode := range []string{"no-subscriber", "subscriber"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			fire := telemetry.NewFirehose()
			if mode == "subscriber" {
				sub := fire.Subscribe(1 << 12)
				done := make(chan struct{})
				go func() {
					defer close(done)
					for range sub.C {
					}
				}()
				defer func() { sub.Close(); <-done }()
			}
			ex, err := market.NewExchange(benchPlanetFleet(b, 0, 1),
				market.Config{InitialBudget: 1e12, Telemetry: fire})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if err := ex.OpenAccount(benchName("bt", i)); err != nil {
					b.Fatal(err)
				}
			}
			benchEpochLoop(b, ex)
			b.ReportMetric(float64(fire.Published()), "events")
		})
	}
}

// benchFederation partitions the planet-wide fleet into an R-region
// federation, with `teams` accounts funded in every region.
func benchFederation(b *testing.B, regions, teams int) *federation.Federation {
	b.Helper()
	rs := make([]*federation.Region, 0, regions)
	for i := 0; i < regions; i++ {
		r, err := federation.NewRegion(benchName("fr", i), benchPlanetFleet(b, i, regions), market.Config{InitialBudget: 1e12})
		if err != nil {
			b.Fatal(err)
		}
		rs = append(rs, r)
	}
	fed, err := federation.NewFederation(rs...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < teams; i++ {
		if err := fed.OpenAccount(benchName("bt", i)); err != nil {
			b.Fatal(err)
		}
	}
	return fed
}

// BenchmarkFederatedSubmit is the SCALE sweep over the region count: the
// identical planet-wide fleet and order flow as BenchmarkEpochLoop,
// structured as R regional markets behind the federation router instead
// of one monolithic book. Each global XOR order enters only its
// cheapest region's book (per the price board), so every regional clock
// carries a fraction of the planet's alternatives, regions settle
// concurrently per Tick, and a leg priced out of one region fails over
// to the next instead of being stranded the way the monolithic clock
// strands it. The timed window again runs until every book drains,
// making settled/s (won orders per second) directly comparable with the
// baseline. Run with a fixed -benchtime, as with BenchmarkEpochLoop.
func BenchmarkFederatedSubmit(b *testing.B) {
	b.ReportAllocs()
	for _, regions := range []int{2, 4, 8} {
		b.Run(benchName("R", regions), func(b *testing.B) {
			b.ReportAllocs()
			fed := benchFederation(b, regions, 16)

			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1) - 1)
				team := benchName("bt", w%16)
				i := 0
				for pb.Next() {
					limit := float64(5 + (i*7+w*13)%60)
					if _, err := fed.SubmitProduct(team, "batch-compute", 1, benchTargets(i), limit); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			// Drain all regional books inside the timed window; each
			// Tick settles every region concurrently and advances
			// failovers — deterministic epoch boundaries, as in the
			// baseline.
			for i := 0; openAcrossRegions(fed) > 0; i++ {
				if i >= 1000 {
					b.Fatal("books did not drain")
				}
				fed.Tick()
			}
			b.StopTimer()
			won := 0
			for _, r := range fed.Regions() {
				for _, rec := range r.Exchange().History() {
					won += rec.Settled
				}
			}
			st := fed.Stats()
			b.ReportMetric(float64(won), "wonOrders")
			b.ReportMetric(float64(st.Failovers), "failovers")
			b.ReportMetric(float64(won)/b.Elapsed().Seconds(), "settled/s")
		})
	}
}

// openAcrossRegions sums the open orders over every regional book.
func openAcrossRegions(fed *federation.Federation) int {
	n := 0
	for _, r := range fed.Regions() {
		n += r.Exchange().OpenOrderCount()
	}
	return n
}

// benchName formats sweep sub-bench names without fmt (keeps the hot loop
// allocation-free).
func benchName(prefix string, n int) string {
	if n == 0 {
		return prefix + "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return prefix + string(digits)
}

var _ = io.Discard // reserved for render benchmarks
