// Arbitrage: reproduces the Section V.C observation that sophisticated
// teams exploit price differentials between clusters — selling holdings
// where the market is expensive and rebuying where it is cheap, pocketing
// the spread. Run with:
//
//	go run ./examples/arbitrage
package main

import (
	"fmt"
	"log"
	"math/rand"

	cm "clustermarket"
)

func main() {
	fleet := cm.NewFleet()
	rng := rand.New(rand.NewSource(11))
	for _, spec := range []struct {
		name   string
		target cm.Usage
	}{
		{"pricey", cm.Usage{CPU: 0.88, RAM: 0.85, Disk: 0.85}},
		{"cheap", cm.Usage{CPU: 0.2, RAM: 0.2, Disk: 0.15}},
	} {
		c := cm.NewCluster(spec.name, nil)
		c.AddMachines(25, cm.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			log.Fatal(err)
		}
		if err := fleet.FillToUtilization(rng, spec.name, spec.target); err != nil {
			log.Fatal(err)
		}
	}
	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 3000})
	if err != nil {
		log.Fatal(err)
	}
	for _, team := range []string{"trader", "grower"} {
		if err := ex.OpenAccount(team); err != nil {
			log.Fatal(err)
		}
	}
	reg := ex.Registry()

	// The trader owns 40 CPU / 100 RAM / 5 Disk in the pricey cluster
	// (given as quota) and places a single trade bundle: sell there, buy
	// the equivalent in the cheap cluster. Its limit of −100 says "only
	// if the swap nets me at least 100 dollars".
	fleet.Quotas().Grant("trader", "pricey", cm.Usage{CPU: 40, RAM: 100, Disk: 5})
	swap := reg.Zero()
	set := func(cluster string, d cm.Dimension, q float64) {
		swap[reg.MustIndex(cm.Pool{Cluster: cluster, Dim: d})] += q
	}
	set("pricey", cm.CPU, -40)
	set("pricey", cm.RAM, -100)
	set("pricey", cm.Disk, -5)
	set("cheap", cm.CPU, 40)
	set("cheap", cm.RAM, 100)
	set("cheap", cm.Disk, 5)
	trade := &cm.Bid{User: "trader/swap", Bundles: []cm.Vector{swap}, Limit: -100}
	if _, err := ex.Submit("trader", trade); err != nil {
		log.Fatal(err)
	}

	// A growing team bids for capacity in the pricey cluster — it is the
	// demand that makes the trader's sale valuable.
	grow := reg.Zero()
	set2 := func(d cm.Dimension, q float64) {
		grow[reg.MustIndex(cm.Pool{Cluster: "pricey", Dim: d})] = q
	}
	set2(cm.CPU, 50)
	set2(cm.RAM, 120)
	set2(cm.Disk, 6)
	if _, err := ex.Submit("grower", &cm.Bid{User: "grower", Bundles: []cm.Vector{grow}, Limit: 2500}); err != nil {
		log.Fatal(err)
	}

	before, _ := ex.Balance("trader")
	rec, _, err := ex.RunAuction()
	if err != nil {
		log.Fatal(err)
	}
	after, _ := ex.Balance("trader")

	fmt.Printf("auction settled in %d rounds; %d/%d orders filled\n",
		rec.Rounds, rec.Settled, rec.Submitted)
	for _, o := range ex.Orders() {
		fmt.Printf("  %-12s %-5s payment %8.2f\n", o.Bid.User, o.Status, o.Payment)
	}
	fmt.Printf("trader balance: %.2f -> %.2f (profit %.2f from the cluster price spread)\n",
		before, after, after-before)
	fmt.Printf("trader quota after swap: pricey=%v cheap=%v\n",
		fleet.Quotas().Granted("trader", "pricey"),
		fleet.Quotas().Granted("trader", "cheap"))
	fmt.Println("\"an increasing sophistication towards arbitrage opportunities\" (Section V.C)")
}
