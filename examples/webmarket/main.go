// Webmarket: serves the trading-platform web UI (Figures 3–5) over a
// small demo world and seeds it with a few open orders so the market
// summary has content. An epoch auction loop settles the book every 30
// seconds, so seeded and newly entered bids clear without any manual
// step. Run with:
//
//	go run ./examples/webmarket
//
// then open http://localhost:8080/.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	cm "clustermarket"
)

func main() {
	fleet := cm.NewFleet()
	rng := rand.New(rand.NewSource(3))
	targets := []cm.Usage{
		{CPU: 0.9, RAM: 0.85, Disk: 0.85},
		{CPU: 0.6, RAM: 0.55, Disk: 0.5},
		{CPU: 0.3, RAM: 0.25, Disk: 0.2},
		{CPU: 0.12, RAM: 0.1, Disk: 0.1},
	}
	for i, target := range targets {
		name := fmt.Sprintf("r%d", i+1)
		c := cm.NewCluster(name, nil)
		c.AddMachines(16, cm.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			log.Fatal(err)
		}
		if err := fleet.FillToUtilization(rng, name, target); err != nil {
			log.Fatal(err)
		}
	}
	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 8000})
	if err != nil {
		log.Fatal(err)
	}
	for _, team := range []string{"search", "ads", "maps"} {
		if err := ex.OpenAccount(team); err != nil {
			log.Fatal(err)
		}
	}
	// Seed some open interest so the summary page shows activity.
	if _, err := ex.SubmitProduct("search", "bigtable-node", 6, []string{"r3", "r4"}, 800); err != nil {
		log.Fatal(err)
	}
	if _, err := ex.SubmitProduct("ads", "serving-frontend", 20, []string{"r2", "r3"}, 600); err != nil {
		log.Fatal(err)
	}
	if _, err := ex.SubmitProduct("maps", "gfs-storage", 15, []string{"r4"}, 500); err != nil {
		log.Fatal(err)
	}

	// Settle the book once per epoch while the web tier admits orders
	// concurrently; POST /auction/run still forces an early settlement.
	epoch := 30 * time.Second
	go ex.Serve(context.Background(), epoch)

	addr := ":8080"
	fmt.Printf("webmarket: open http://localhost%s/ (bid entry at /bid; auctions settle every %s)\n", addr, epoch)
	log.Fatal(http.ListenAndServe(addr, cm.NewWebUI(ex)))
}
