// Migration: reproduces the Section V.B behavior in miniature — a mobile
// team priced out of a congested cluster by utilization-weighted reserve
// prices relocates to an idle one, while an anchored team pays the
// congestion premium to stay. Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"math/rand"

	cm "clustermarket"
)

func main() {
	// Cluster "hot" starts ~85% utilized, "cold" ~15%.
	fleet := cm.NewFleet()
	rng := rand.New(rand.NewSource(7))
	for _, spec := range []struct {
		name   string
		target cm.Usage
	}{
		{"hot", cm.Usage{CPU: 0.85, RAM: 0.85, Disk: 0.8}},
		{"cold", cm.Usage{CPU: 0.15, RAM: 0.15, Disk: 0.1}},
	} {
		c := cm.NewCluster(spec.name, nil)
		c.AddMachines(20, cm.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			log.Fatal(err)
		}
		if err := fleet.FillToUtilization(rng, spec.name, spec.target); err != nil {
			log.Fatal(err)
		}
	}

	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 5000})
	if err != nil {
		log.Fatal(err)
	}
	for _, team := range []string{"mobile", "anchored"} {
		if err := ex.OpenAccount(team); err != nil {
			log.Fatal(err)
		}
	}

	reserve, err := ex.ReservePrices()
	if err != nil {
		log.Fatal(err)
	}
	reg := ex.Registry()
	hotCPU := reg.MustIndex(cm.Pool{Cluster: "hot", Dim: cm.CPU})
	coldCPU := reg.MustIndex(cm.Pool{Cluster: "cold", Dim: cm.CPU})
	fmt.Printf("reserve prices: hot/CPU=%.3f cold/CPU=%.3f (congestion-weighted, Section IV)\n",
		reserve[hotCPU], reserve[coldCPU])

	// The mobile team is indifferent between clusters; the anchored team
	// insists on "hot" (reengineering its stack would cost more than the
	// price premium).
	mobile := &cm.Bid{
		User:  "mobile",
		Limit: 2000,
		Bundles: []cm.Vector{
			bundle(reg, "hot", 60, 200, 10),
			bundle(reg, "cold", 60, 200, 10),
		},
	}
	anchored := &cm.Bid{
		User:    "anchored",
		Limit:   3000,
		Bundles: []cm.Vector{bundle(reg, "hot", 60, 200, 10)},
	}
	if _, err := ex.Submit("mobile", mobile); err != nil {
		log.Fatal(err)
	}
	if _, err := ex.Submit("anchored", anchored); err != nil {
		log.Fatal(err)
	}

	rec, _, err := ex.RunAuction()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction settled in %d rounds\n", rec.Rounds)
	for _, o := range ex.Orders() {
		where := "nothing"
		if o.Allocation != nil {
			where = reg.Format(o.Allocation)
		}
		fmt.Printf("  %-9s %-5s -> %s (paid %.2f)\n", o.Team, o.Status, where, o.Payment)
	}
	fmt.Println("the mobile team lands in the idle cluster; the anchored team pays the congestion premium —")
	fmt.Println("\"the market economy allows teams to act on those costs autonomously\" (Section V.B)")

	// The quota ledger now reflects the placements.
	fmt.Printf("  mobile quota in cold: %v\n", fleet.Quotas().Granted("mobile", "cold"))
	fmt.Printf("  anchored quota in hot: %v\n", fleet.Quotas().Granted("anchored", "hot"))
}

func bundle(reg *cm.Registry, cluster string, cpu, ram, disk float64) cm.Vector {
	v := reg.Zero()
	v[reg.MustIndex(cm.Pool{Cluster: cluster, Dim: cm.CPU})] = cpu
	v[reg.MustIndex(cm.Pool{Cluster: cluster, Dim: cm.RAM})] = ram
	v[reg.MustIndex(cm.Pool{Cluster: cluster, Dim: cm.Disk})] = disk
	return v
}
