// Quickstart: the smallest complete market — two clusters, two teams, one
// clock auction. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cm "clustermarket"
)

func main() {
	// 1. Build the physical substrate: two clusters of identical machines.
	fleet := cm.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cm.NewCluster(name, nil)
		c.AddMachines(8, cm.Usage{CPU: 16, RAM: 64, Disk: 10})
		if err := fleet.AddCluster(c); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Open the exchange and give each team budget dollars.
	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 2000})
	if err != nil {
		log.Fatal(err)
	}
	for _, team := range []string{"search", "ads"} {
		if err := ex.OpenAccount(team); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Teams bid. search uses the two-step product flow (Figure 4);
	// ads writes a bid in the TBBL-style bidding language directly.
	if _, err := ex.SubmitProduct("search", "bigtable-node", 4, []string{"r1", "r2"}, 300); err != nil {
		log.Fatal(err)
	}
	parsed, err := cm.ParseBid(`bid "ads" limit 250 {
	  oneof {
	    all { r1/cpu:20 r1/ram:40 r1/disk:2 }
	    all { r2/cpu:20 r2/ram:40 r2/disk:2 }
	  }
	}`)
	if err != nil {
		log.Fatal(err)
	}
	bid, err := cm.CompileBid(parsed, ex.Registry())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ex.Submit("ads", bid); err != nil {
		log.Fatal(err)
	}

	// 4. Run the binding clock auction.
	rec, _, err := ex.RunAuction()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction #%d converged in %d rounds; %d/%d orders settled\n",
		rec.Number, rec.Rounds, rec.Settled, rec.Submitted)

	// 5. Inspect the outcome.
	for _, o := range ex.Orders() {
		fmt.Printf("  order %d (%s): %s", o.ID, o.Team, o.Status)
		if o.Allocation != nil {
			fmt.Printf(", paid %.2f for %s", o.Payment, ex.Registry().Format(o.Allocation))
		}
		fmt.Println()
	}
	for _, team := range ex.Teams() {
		bal, _ := ex.Balance(team)
		fmt.Printf("  %s balance: %.2f\n", team, bal)
	}
	rows, err := ex.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("market summary (uniform per-unit prices):")
	for _, r := range rows {
		fmt.Printf("  %-4s cpu=%.3f ram=%.3f disk=%.3f\n", r.Cluster, r.Price.CPU, r.Price.RAM, r.Price.Disk)
	}
}
