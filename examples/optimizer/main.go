// Optimizer: contrasts the paper's clock auction with the explicitly
// optimizing allocator it discusses as future work (Sections III.C.4 and
// VI). The optimizer squeezes out more total surplus, faster — but its
// outcome cannot be supported by fair uniform prices, which is why the
// production system runs the clock. Run with:
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	cm "clustermarket"
)

func main() {
	reg := cm.NewRegistry(
		cm.Pool{Cluster: "east", Dim: cm.CPU},
		cm.Pool{Cluster: "west", Dim: cm.CPU},
	)
	reserve := cm.Vector{1, 1}

	// Supply: the operator sells 100 cores per cluster. Demand: a whale
	// that takes a whole cluster, and a school of small teams whose
	// combined value exceeds the whale's.
	bids := []*cm.Bid{
		{User: "operator", Limit: -0.01, Bundles: []cm.Vector{{-100, -100}}},
		{User: "whale", Limit: 260, Bundles: []cm.Vector{{100, 0}, {0, 100}}},
	}
	for i := 0; i < 5; i++ {
		bids = append(bids, &cm.Bid{
			User:    fmt.Sprintf("small-%d", i),
			Limit:   90,
			Bundles: []cm.Vector{{40, 0}, {0, 40}},
		})
	}

	// Path 1: the clock auction (the paper's choice).
	a, err := cm.NewAuction(reg, bids, cm.AuctionConfig{
		Start:  reserve,
		Policy: cm.Capped{Alpha: 0.01, Delta: 0.1, MinStep: 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}
	clock, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	clockWelfare, err := cm.EvaluateWelfare(bids, clock.Allocations, reserve, cm.TotalSurplus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock auction:   %d rounds, prices %v\n", clock.Rounds, clock.Prices)
	fmt.Printf("  winners %v, total surplus %.2f\n", clock.Winners, clockWelfare)
	if v := cm.CheckSystem(bids, clock, 1e-9); len(v) == 0 {
		fmt.Println("  SYSTEM fairness constraints: all satisfied (uniform prices separate winners from losers)")
	}

	// Path 2: the exact optimizer over the same bids.
	opt, err := cm.OptimizeExact(reg, bids, reserve, cm.TotalSurplus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact optimizer: total surplus %.2f (accepted bids %v)\n", opt.Welfare, opt.Accepted)
	fmt.Printf("  surplus gained over clock: %.2f\n", opt.Welfare-clockWelfare)
	fmt.Printf("  fairness violations at reserve prices: %d\n", cm.UnfairnessReport(bids, opt, reserve))
	fmt.Println("\nthe paper's point: the clock \"completely ignores the objective function\"")
	fmt.Println("but yields clear, fair, uniform price signals — the optimizer does not.")
}
