// Command marketd serves the trading-platform web UI (Figures 3–5) over a
// demo world: a fleet of clusters with skewed utilization and a set of
// team accounts ready to bid.
//
//	marketd -addr :8080 -clusters 8 -seed 42 -epoch 30s
//
// Then browse http://localhost:8080/ for the market summary and /bid to
// enter bids. With -epoch set, accumulated orders settle automatically
// in one clock auction per epoch; POST /auction/run forces a settlement
// at any time (and is the only way to settle when -epoch is 0).
//
// With -regions N (N ≥ 2), marketd builds a federated world instead: N
// regional markets, each with its own fleet and epoch loop, fronted by
// the global market view at / with per-region drill-downs under
// /region/<name>/. The first region runs hot so cross-region bids
// visibly route toward the cheaper regions.
//
// -shards sets the number of stripes each exchange's order and account
// books are split into (0 selects the library default): order entry in
// different stripes never shares a lock, so the web tier's submit path
// scales with CPUs.
//
// With -journal-dir set, every settlement-relevant state change is
// journaled to a durable WAL before it takes effect (-fsync-every sets
// the group-commit window). Restarting marketd against the same
// directory — with the same world flags (-clusters, -machines, -seed,
// -budget, -regions) — recovers the books exactly where the previous
// process left them, verifying the shared invariant kernel before
// serving. A directory already held by a live process is refused at
// startup (the journal's lockfile), so two marketds cannot interleave
// writes to one WAL.
//
// marketd shuts down cleanly on SIGINT/SIGTERM: the epoch loops are
// cancelled, the HTTP server drains in-flight requests, and the journal
// is flushed, fsynced, and unlocked before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
	"clustermarket/internal/webui"
)

// shutdownTimeout bounds how long in-flight HTTP requests may drain
// after a termination signal.
const shutdownTimeout = 5 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusters := flag.Int("clusters", 8, "number of clusters (per region with -regions)")
	machines := flag.Int("machines", 20, "machines per cluster")
	seed := flag.Int64("seed", 42, "random seed for the demo load")
	budget := flag.Float64("budget", 10000, "initial budget per team")
	epoch := flag.Duration("epoch", 30*time.Second,
		"auction epoch: settle accumulated orders every interval (0 disables the loop)")
	regions := flag.Int("regions", 0,
		"number of federated regions (0 = single exchange, ≥2 = federated market)")
	shards := flag.Int("shards", 0,
		"order/account book stripes per exchange (0 selects the default); submits in different stripes never share a lock")
	engineName := flag.String("engine", "incremental",
		"clock-auction engine: incremental (O(affected bidders) per round) or dense (reference path)")
	partition := flag.Bool("partition", true,
		"decompose each clock auction into independent bidder–pool components and clear them concurrently (bit-identical to the merged run); false pins the merged single-clock path")
	journalDir := flag.String("journal-dir", "",
		"durable journal directory: state changes hit the WAL before taking effect, and a restart recovers the books (world flags must match the previous run)")
	fsyncEvery := flag.Int("fsync-every", 1,
		"journal group-commit window: fsync the WAL after every N appended records")
	lockWait := flag.Duration("lock-wait", 0,
		"how long to retry opening a journal directory locked by another live process (0 fails immediately); covers the restart race where the previous marketd is still draining")
	flag.Parse()

	if err := validateFlags(*clusters, *machines, *regions, *shards, *budget, *epoch, *lockWait); err != nil {
		fmt.Fprintf(os.Stderr, "marketd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	engine, err := parseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marketd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	partMode := core.PartitionAuto
	if !*partition {
		partMode = core.PartitionOff
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Every exchange and the federation router publish to one firehose,
	// so /metrics and the /api/events live feed see the whole process.
	fire := telemetry.NewFirehose()
	health := telemetry.NewHealth(time.Now())
	health.SetJournal(*journalDir, *journalDir != "")

	var handler http.Handler
	// closeJournal flushes, fsyncs, and unlocks the journal(s) after the
	// HTTP server has drained — the durability half of graceful shutdown.
	closeJournal := func() error { return nil }
	if *regions > 0 {
		fed, closer, err := buildFederatedDemo(*regions, *clusters, *machines, *seed, *budget, engine, partMode, *shards, *journalDir, *fsyncEvery, *lockWait, fire)
		if err != nil {
			log.Fatal("marketd: ", err)
		}
		closeJournal = closer
		if *epoch > 0 {
			go fed.Serve(ctx, *epoch)
			log.Printf("marketd: %d region epoch loops settling every %s", *regions, *epoch)
		} else {
			log.Printf("marketd: epoch loops disabled; settle per region via POST /region/<name>/auction/run")
		}
		// The federation's epoch loops live inside Serve, so health checks
		// run on their own clock rather than a per-tick hook.
		exs := make([]*market.Exchange, 0, *regions)
		for _, r := range fed.Regions() {
			exs = append(exs, r.Exchange())
		}
		health.RecordCheck(time.Now(), liveViolations(exs...))
		go healthLoop(ctx, health, *epoch, exs...)
		s := webui.NewFederated(fed)
		s.SetHealth(health)
		handler = s
		log.Printf("marketd: serving federated market (%d regions) on %s", *regions, *addr)
	} else {
		ex, closer, err := buildDemo(*clusters, *machines, *seed, *budget, engine, partMode, *shards, *journalDir, *fsyncEvery, *lockWait, fire)
		if err != nil {
			log.Fatal("marketd: ", err)
		}
		closeJournal = closer
		health.RecordCheck(time.Now(), liveViolations(ex))
		if *epoch > 0 {
			loop, err := market.NewLoop(ex, *epoch)
			if err != nil {
				log.Fatal("marketd: ", err)
			}
			loop.OnTick = func(rec *market.AuctionRecord, err error) {
				health.RecordCheck(time.Now(), liveViolations(ex))
				if err != nil {
					log.Printf("marketd: epoch auction: %v", err)
					return
				}
				log.Printf("marketd: auction %d settled %d/%d orders in %d rounds",
					rec.Number, rec.Settled, rec.Submitted, rec.Rounds)
			}
			go loop.Run(ctx)
			log.Printf("marketd: epoch auction loop settling every %s", *epoch)
		} else {
			go healthLoop(ctx, health, 0, ex)
			log.Printf("marketd: epoch loop disabled; settle via POST /auction/run")
		}
		s := webui.New(ex)
		s.SetHealth(health)
		handler = s
		log.Printf("marketd: serving trading platform on %s", *addr)
	}

	if err := serve(ctx, *addr, handler); err != nil {
		closeJournal()
		log.Fatal("marketd: ", err)
	}
	if err := closeJournal(); err != nil {
		log.Fatal("marketd: closing journal: ", err)
	}
	log.Printf("marketd: shut down cleanly")
}

// serve listens on addr and runs serveListener.
func serve(ctx context.Context, addr string, handler http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(ctx, ln, handler)
}

// serveListener runs an HTTP server on ln until ctx is cancelled
// (SIGINT/SIGTERM), then drains in-flight requests for up to
// shutdownTimeout. A nil return means a clean shutdown.
func serveListener(ctx context.Context, ln net.Listener, handler http.Handler) error {
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// Serving failed before any signal.
		return err
	case <-ctx.Done():
	}
	log.Printf("marketd: signal received, draining (max %s)", shutdownTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// healthCheckInterval is the /healthz invariant-check cadence when no
// epoch loop exists to hook.
const healthCheckInterval = 30 * time.Second

// liveViolations runs the invariant checks that are valid while
// settlements are in flight — conservation of money in the ledger and
// non-negative balances. The commitment/exposure cross-check is
// quiescent-only (it false-positives mid-auction), so the probe skips
// it.
func liveViolations(exs ...*market.Exchange) []string {
	var out []string
	for _, ex := range exs {
		vs := invariant.CheckLedgerBalanced(ex.Ledger(), invariant.Eps)
		balances := make(map[string]float64)
		for _, team := range ex.Teams() {
			if b, err := ex.Balance(team); err == nil {
				balances[team] = b
			}
		}
		vs = append(vs, invariant.CheckBalancesNonNegative(balances, invariant.Eps)...)
		for _, v := range vs {
			out = append(out, v.String())
		}
	}
	return out
}

// healthLoop re-runs the live-safe invariant checks on a timer until
// ctx is cancelled, feeding /healthz. every <= 0 selects the default
// cadence.
func healthLoop(ctx context.Context, health *telemetry.Health, every time.Duration, exs ...*market.Exchange) {
	if every <= 0 {
		every = healthCheckInterval
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			health.RecordCheck(time.Now(), liveViolations(exs...))
		}
	}
}

// validateFlags rejects demo-world parameters that would panic or build
// a silently broken market.
func validateFlags(clusters, machines, regions, shards int, budget float64, epoch, lockWait time.Duration) error {
	if clusters < 1 {
		return fmt.Errorf("-clusters must be at least 1, got %d", clusters)
	}
	if machines < 1 {
		return fmt.Errorf("-machines must be at least 1, got %d", machines)
	}
	if budget <= 0 {
		return fmt.Errorf("-budget must be positive, got %g", budget)
	}
	if epoch < 0 {
		return fmt.Errorf("-epoch must not be negative, got %s", epoch)
	}
	if regions < 0 {
		return fmt.Errorf("-regions must not be negative, got %d", regions)
	}
	if regions == 1 {
		return errors.New("-regions needs at least 2 regions to federate (use 0 for a single exchange)")
	}
	if shards < 0 {
		return fmt.Errorf("-shards must not be negative, got %d", shards)
	}
	if lockWait < 0 {
		return fmt.Errorf("-lock-wait must not be negative, got %s", lockWait)
	}
	return nil
}

// Lock-retry backoff for -lock-wait: starts small so a normal restart
// race (the old process draining for under a second) resolves quickly,
// doubles to a cap so a long wait doesn't spin.
const (
	lockRetryBase = 50 * time.Millisecond
	lockRetryCap  = time.Second
)

// openJournal opens dir's journal, retrying for up to wait while
// another live process holds the directory flock — the
// restart-under-supervisor race where the previous marketd is still
// draining its journal. Any other error, or wait 0, fails immediately.
// On success it surfaces torn-tail truncation details in the log.
func openJournal(dir string, opts journal.Options, wait time.Duration) (*journal.Journal, *journal.Recovery, error) {
	deadline := time.Now().Add(wait)
	backoff := lockRetryBase
	for {
		j, rec, err := journal.Open(dir, opts)
		if err == nil {
			logRecoveryTruncation(dir, rec)
			return j, rec, nil
		}
		if !errors.Is(err, journal.ErrLocked) || wait <= 0 || time.Now().After(deadline) {
			return nil, nil, err
		}
		log.Printf("marketd: journal %s held by another process; retrying in %s", dir, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > lockRetryCap {
			backoff = lockRetryCap
		}
	}
}

// logRecoveryTruncation reports what a torn-tail truncation lost —
// the frame index and (best-effort) event kind of the first discarded
// record — so an operator learns *what* the crash cost, not just that
// bytes were cut.
func logRecoveryTruncation(dir string, rec *journal.Recovery) {
	if rec == nil || !rec.Truncated {
		return
	}
	kind := rec.TruncKind
	if kind == "" {
		kind = "undecodable"
	}
	log.Printf("marketd: journal %s: torn tail truncated (%s): discarded frame %d, %s event",
		dir, rec.TruncReason, rec.TruncFrame, kind)
}

// parseEngine maps the -engine flag onto the core engine selector.
func parseEngine(name string) (core.Engine, error) {
	switch name {
	case "incremental":
		return core.EngineIncremental, nil
	case "dense":
		return core.EngineDense, nil
	default:
		return 0, fmt.Errorf("unknown -engine %q (want incremental or dense)", name)
	}
}

// regionNames is the palette of demo region names; beyond it, regions
// are named g<i>.
var regionNames = []string{"us", "eu", "asia", "sam", "africa", "oceania", "india", "japan"}

func regionName(i int) string {
	if i < len(regionNames) {
		return regionNames[i]
	}
	return fmt.Sprintf("g%d", i+1)
}

// demoTeams are the funded accounts of the demo world.
var demoTeams = []string{"search", "ads", "maps", "mail", "storage"}

// buildRegionFleet assembles one region's clusters with the demo's
// hot/cold contrast: hot regions run mostly congested, others mostly
// idle with the occasional warm cluster.
func buildRegionFleet(rng *rand.Rand, prefix string, clusters, machines int, hot bool) (*cluster.Fleet, error) {
	fleet := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		name := fmt.Sprintf("%sr%d", prefix, i)
		c := cluster.New(name, nil)
		c.AddMachines(machines, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			return nil, err
		}
		// A hot region's first cluster always runs congested so the market
		// summary shows price contrast; a third of the rest join it. Cold
		// regions get the occasional warm cluster.
		var target cluster.Usage
		congested := hot && (i == 1 || rng.Float64() < 0.33)
		if !hot && i > 1 && rng.Float64() < 0.2 {
			congested = true
		}
		if congested {
			target = cluster.Usage{CPU: 0.85, RAM: 0.8, Disk: 0.8}
		} else {
			target = cluster.Usage{CPU: 0.25, RAM: 0.3, Disk: 0.2}
		}
		if err := fleet.FillToUtilization(rng, name, target); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// noClose is the journal-less closer: nothing to flush.
func noClose() error { return nil }

// buildDemo assembles the single-exchange demo world. With journalDir
// set, the exchange journals every state change; if the directory holds
// a previous run's journal, the books are recovered from it instead of
// starting fresh (the world flags must match that run, since the fleet
// is rebuilt deterministically from the seed, not journaled). Recovery
// runs the shared invariant kernel before serving. The returned closer
// flushes and unlocks the journal on shutdown.
func buildDemo(clusters, machines int, seed int64, budget float64, engine core.Engine, partition core.PartitionMode, shards int, journalDir string, fsyncEvery int, lockWait time.Duration, fire *telemetry.Firehose) (*market.Exchange, func() error, error) {
	rng := rand.New(rand.NewSource(seed))
	fleet, err := buildRegionFleet(rng, "", clusters, machines, true)
	if err != nil {
		return nil, nil, err
	}
	cfg := market.Config{InitialBudget: budget, Engine: engine, Partition: partition, Shards: shards, Telemetry: fire}
	if journalDir == "" {
		ex, err := market.NewExchange(fleet, cfg)
		if err != nil {
			return nil, nil, err
		}
		return ex, noClose, openDemoAccounts(ex.OpenAccount)
	}
	// A directory locked by a live marketd refuses to open — startup
	// fails rather than interleaving two processes' writes in one WAL.
	// -lock-wait bounds a retry loop over exactly that refusal, for the
	// restart race where the old process is still draining.
	j, rec, err := openJournal(journalDir, journal.Options{FsyncEvery: fsyncEvery}, lockWait)
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = j
	if rec.Empty() {
		ex, err := market.NewExchange(fleet, cfg)
		if err != nil {
			j.Close()
			return nil, nil, err
		}
		log.Printf("marketd: journaling to %s (fsync every %d records)", journalDir, fsyncEvery)
		if err := openDemoAccounts(ex.OpenAccount); err != nil {
			j.Close()
			return nil, nil, err
		}
		return ex, j.Close, nil
	}
	// The demo accounts were journaled when they were first opened, so
	// recovery replays them — opening them again would double-book.
	ex, err := market.Recover(fleet, cfg, rec)
	if err != nil {
		j.Close()
		return nil, nil, fmt.Errorf("recovering %s: %w", journalDir, err)
	}
	if vs := invariant.CheckExchange(ex); len(vs) > 0 {
		j.Close()
		return nil, nil, fmt.Errorf("recovered books fail invariants (refusing to serve): %s", vs[0])
	}
	log.Printf("marketd: recovered %d auctions and %d teams from %s (snapshot seq %d, %d WAL records replayed)",
		len(ex.History()), len(ex.Teams()), journalDir, rec.SnapshotSeq, len(rec.Records))
	return ex, j.Close, nil
}

// openDemoAccounts funds the demo teams through the given opener.
func openDemoAccounts(open func(team string) error) error {
	for _, team := range demoTeams {
		if err := open(team); err != nil {
			return err
		}
	}
	return nil
}

// fedSnapshotEvery is the router journal's snapshot cadence (in
// settlements) for the federated demo.
const fedSnapshotEvery = 64

// buildFederatedDemo assembles N regional markets behind one federation.
// The first region runs hot and the rest cold, so the global view shows
// price contrast between regions and cross-region bids route away from
// the hot region. With journalDir set, each region journals its book to
// journalDir/<region> and the router journals routing state to
// journalDir/fed; a directory holding a previous run recovers every
// member to the same cut — all-or-nothing, since a half-recovered
// federation would desynchronize routing state from the regional books.
func buildFederatedDemo(regions, clusters, machines int, seed int64, budget float64, engine core.Engine, partition core.PartitionMode, shards int, journalDir string, fsyncEvery int, lockWait time.Duration, fire *telemetry.Firehose) (*federation.Federation, func() error, error) {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]*federation.Region, 0, regions)
	var journals []*journal.Journal
	closeAll := func() error {
		var first error
		for _, j := range journals {
			if err := j.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	recovered := 0
	for i := 0; i < regions; i++ {
		name := regionName(i)
		fleet, err := buildRegionFleet(rng, name+"-", clusters, machines, i == 0)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		cfg := market.Config{InitialBudget: budget, Engine: engine, Partition: partition, Shards: shards, Telemetry: fire}
		var rec *journal.Recovery
		if journalDir != "" {
			var j *journal.Journal
			j, rec, err = openJournal(filepath.Join(journalDir, name), journal.Options{FsyncEvery: fsyncEvery}, lockWait)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			journals = append(journals, j)
			cfg.Journal = j
		}
		var r *federation.Region
		if rec != nil && !rec.Empty() {
			r, err = federation.RecoverRegion(name, fleet, cfg, rec)
			recovered++
		} else {
			r, err = federation.NewRegion(name, fleet, cfg)
		}
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		rs = append(rs, r)
	}
	fed, err := federation.NewFederation(rs...)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	fed.AttachTelemetry(fire)
	if journalDir != "" {
		fj, frec, err := openJournal(filepath.Join(journalDir, "fed"), journal.Options{FsyncEvery: fsyncEvery}, lockWait)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		journals = append(journals, fj)
		if !frec.Empty() {
			if err := fed.Restore(frec); err != nil {
				closeAll()
				return nil, nil, err
			}
			recovered++
		}
		fed.AttachJournal(fj, fedSnapshotEvery)
	}
	if recovered > 0 && recovered != regions+1 {
		closeAll()
		return nil, nil, fmt.Errorf("partial journal state in %s: %d of %d journals hold history (refusing a half-recovered federation)",
			journalDir, recovered, regions+1)
	}
	if recovered > 0 {
		if vs := invariant.CheckFederation(fed); len(vs) > 0 {
			closeAll()
			return nil, nil, fmt.Errorf("recovered federation fails invariants (refusing to serve): %s", vs[0])
		}
		log.Printf("marketd: recovered %d regions and routing state from %s", regions, journalDir)
		return fed, closeAll, nil
	}
	if err := openDemoAccounts(fed.OpenAccount); err != nil {
		closeAll()
		return nil, nil, err
	}
	if journalDir != "" {
		log.Printf("marketd: journaling %d regions and routing state under %s", regions, journalDir)
	}
	return fed, closeAll, nil
}
