// Command marketd serves the trading-platform web UI (Figures 3–5) over a
// demo world: a fleet of clusters with skewed utilization and a set of
// team accounts ready to bid.
//
//	marketd -addr :8080 -clusters 8 -seed 42 -epoch 30s
//
// Then browse http://localhost:8080/ for the market summary and /bid to
// enter bids. With -epoch set, accumulated orders settle automatically
// in one clock auction per epoch; POST /auction/run forces a settlement
// at any time (and is the only way to settle when -epoch is 0).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
	"clustermarket/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusters := flag.Int("clusters", 8, "number of clusters")
	machines := flag.Int("machines", 20, "machines per cluster")
	seed := flag.Int64("seed", 42, "random seed for the demo load")
	budget := flag.Float64("budget", 10000, "initial budget per team")
	epoch := flag.Duration("epoch", 30*time.Second,
		"auction epoch: settle accumulated orders every interval (0 disables the loop)")
	flag.Parse()

	ex, err := buildDemo(*clusters, *machines, *seed, *budget)
	if err != nil {
		log.Fatal("marketd: ", err)
	}
	if *epoch > 0 {
		loop, err := market.NewLoop(ex, *epoch)
		if err != nil {
			log.Fatal("marketd: ", err)
		}
		loop.OnTick = func(rec *market.AuctionRecord, err error) {
			if err != nil {
				log.Printf("marketd: epoch auction: %v", err)
				return
			}
			log.Printf("marketd: auction %d settled %d/%d orders in %d rounds",
				rec.Number, rec.Settled, rec.Submitted, rec.Rounds)
		}
		go loop.Run(context.Background())
		log.Printf("marketd: epoch auction loop settling every %s", *epoch)
	} else {
		log.Printf("marketd: epoch loop disabled; settle via POST /auction/run")
	}
	log.Printf("marketd: serving trading platform on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, webui.New(ex)))
}

func buildDemo(clusters, machines int, seed int64, budget float64) (*market.Exchange, error) {
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		name := fmt.Sprintf("r%d", i)
		c := cluster.New(name, nil)
		c.AddMachines(machines, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			return nil, err
		}
		// The first cluster always runs hot so the market summary shows
		// price contrast; a third of the rest join it.
		var target cluster.Usage
		if i == 1 || rng.Float64() < 0.33 {
			target = cluster.Usage{CPU: 0.85, RAM: 0.8, Disk: 0.8}
		} else {
			target = cluster.Usage{CPU: 0.25, RAM: 0.3, Disk: 0.2}
		}
		if err := fleet.FillToUtilization(rng, name, target); err != nil {
			return nil, err
		}
	}
	ex, err := market.NewExchange(fleet, market.Config{InitialBudget: budget})
	if err != nil {
		return nil, err
	}
	for _, team := range []string{"search", "ads", "maps", "mail", "storage"} {
		if err := ex.OpenAccount(team); err != nil {
			return nil, err
		}
	}
	return ex, nil
}
