// Command marketd serves the trading-platform web UI (Figures 3–5) over a
// demo world: a fleet of clusters with skewed utilization and a set of
// team accounts ready to bid.
//
//	marketd -addr :8080 -clusters 8 -seed 42
//
// Then browse http://localhost:8080/ for the market summary, /bid to
// enter bids, and POST /auction/run to settle.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
	"clustermarket/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusters := flag.Int("clusters", 8, "number of clusters")
	machines := flag.Int("machines", 20, "machines per cluster")
	seed := flag.Int64("seed", 42, "random seed for the demo load")
	budget := flag.Float64("budget", 10000, "initial budget per team")
	flag.Parse()

	ex, err := buildDemo(*clusters, *machines, *seed, *budget)
	if err != nil {
		log.Fatal("marketd: ", err)
	}
	log.Printf("marketd: serving trading platform on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, webui.New(ex)))
}

func buildDemo(clusters, machines int, seed int64, budget float64) (*market.Exchange, error) {
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		name := fmt.Sprintf("r%d", i)
		c := cluster.New(name, nil)
		c.AddMachines(machines, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			return nil, err
		}
		// The first cluster always runs hot so the market summary shows
		// price contrast; a third of the rest join it.
		var target cluster.Usage
		if i == 1 || rng.Float64() < 0.33 {
			target = cluster.Usage{CPU: 0.85, RAM: 0.8, Disk: 0.8}
		} else {
			target = cluster.Usage{CPU: 0.25, RAM: 0.3, Disk: 0.2}
		}
		if err := fleet.FillToUtilization(rng, name, target); err != nil {
			return nil, err
		}
	}
	ex, err := market.NewExchange(fleet, market.Config{InitialBudget: budget})
	if err != nil {
		return nil, err
	}
	for _, team := range []string{"search", "ads", "maps", "mail", "storage"} {
		if err := ex.OpenAccount(team); err != nil {
			return nil, err
		}
	}
	return ex, nil
}
