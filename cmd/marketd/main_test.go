package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustermarket/internal/core"
	"clustermarket/internal/journal"
	"clustermarket/internal/telemetry"
	"clustermarket/internal/webui"
)

func TestBuildDemo(t *testing.T) {
	ex, _, err := buildDemo(4, 6, 42, 5000, core.EngineIncremental, core.PartitionAuto, 0, "", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ex.Teams()); got != 5 {
		t.Fatalf("teams = %d", got)
	}
	if got := ex.Registry().Len(); got != 12 {
		t.Fatalf("pools = %d", got)
	}
	// The demo fleet must contain both hot and cold clusters so the
	// summary page shows contrast.
	rows, err := ex.Summary()
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold bool
	for _, r := range rows {
		if r.Utilization.CPU >= 0.7 {
			hot = true
		}
		if r.Utilization.CPU <= 0.4 {
			cold = true
		}
	}
	if !hot || !cold {
		t.Errorf("demo lacks load contrast: hot=%v cold=%v", hot, cold)
	}

	// The demo exchange serves the web UI end to end.
	ts := httptest.NewServer(webui.New(ex))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "Market summary") {
		t.Error("summary page missing title")
	}
}

func TestBuildDemoBadInputs(t *testing.T) {
	// Zero clusters yields an exchange error (no pools).
	if _, _, err := buildDemo(0, 4, 1, 100, core.EngineIncremental, core.PartitionAuto, 0, "", 1, 0, nil); err == nil {
		t.Error("zero clusters accepted")
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(8, 20, 0, 0, 10000, 30*time.Second, 0); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateFlags(4, 10, 3, 4, 5000, 0, 2*time.Second); err != nil {
		t.Errorf("federated flags rejected: %v", err)
	}
	bad := []struct {
		name                                string
		clusters, machines, regions, shards int
		budget                              float64
		epoch                               time.Duration
		lockWait                            time.Duration
	}{
		{"zero clusters", 0, 20, 0, 0, 10000, time.Second, 0},
		{"negative clusters", -3, 20, 0, 0, 10000, time.Second, 0},
		{"zero machines", 8, 0, 0, 0, 10000, time.Second, 0},
		{"zero budget", 8, 20, 0, 0, 0, time.Second, 0},
		{"negative budget", 8, 20, 0, 0, -5, time.Second, 0},
		{"negative epoch", 8, 20, 0, 0, 10000, -time.Second, 0},
		{"negative regions", 8, 20, -1, 0, 10000, time.Second, 0},
		{"one region", 8, 20, 1, 0, 10000, time.Second, 0},
		{"negative shards", 8, 20, 0, -2, 10000, time.Second, 0},
		{"negative lock-wait", 8, 20, 0, 0, 10000, time.Second, -time.Second},
	}
	for _, tc := range bad {
		if err := validateFlags(tc.clusters, tc.machines, tc.regions, tc.shards, tc.budget, tc.epoch, tc.lockWait); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBuildFederatedDemo(t *testing.T) {
	fed, _, err := buildFederatedDemo(3, 2, 6, 42, 5000, core.EngineIncremental, core.PartitionAuto, 2, "", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	regions := fed.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	if regions[0].Name() != "us" || regions[1].Name() != "eu" {
		t.Errorf("region names = %s, %s", regions[0].Name(), regions[1].Name())
	}
	if got := fed.RegionOf("eu-r1"); got != "eu" {
		t.Errorf("eu-r1 owned by %q", got)
	}
	if got := len(fed.Teams()); got != 5 {
		t.Errorf("teams = %d", got)
	}

	// The federated demo serves the global view and drill-downs end to
	// end, and a cross-region bid routes away from the hot us region.
	if _, err := fed.SubmitProduct("search", "batch-compute", 1, []string{"us-r1", "eu-r1"}, 100); err != nil {
		t.Fatal(err)
	}
	fed.Tick()
	ts := httptest.NewServer(webui.NewFederated(fed))
	defer ts.Close()
	for _, path := range []string{"/", "/region/eu/", "/region/eu/bid"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
	st := fed.Stats()
	if st.CrossRegion != 1 || st.Won != 1 {
		t.Errorf("router stats = %+v", st)
	}
}

// TestServeGracefulShutdown drives the real serve() path: the server
// accepts traffic, then drains cleanly once the context is cancelled —
// the SIGINT/SIGTERM flow without the signal.
func TestServeGracefulShutdown(t *testing.T) {
	ex, _, err := buildDemo(2, 4, 7, 1000, core.EngineIncremental, core.PartitionAuto, 0, "", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveListener(ctx, ln, webui.New(ex)) }()

	// Wait for the listener, then confirm it serves.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not drain after cancel")
	}
}

func TestParseEngine(t *testing.T) {
	if e, err := parseEngine("incremental"); err != nil || e != core.EngineIncremental {
		t.Errorf("incremental = %v, %v", e, err)
	}
	if e, err := parseEngine("dense"); err != nil || e != core.EngineDense {
		t.Errorf("dense = %v, %v", e, err)
	}
	if _, err := parseEngine("warp"); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestJournaledDemoRecovers restarts the journaled demo world and
// requires the books to come back exactly: same auctions, same teams,
// same balances. It also pins the startup refusal on a locked journal
// directory — the flock a live marketd holds.
func TestJournaledDemoRecovers(t *testing.T) {
	dir := t.TempDir()
	ex, closer, err := buildDemo(3, 6, 11, 8000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitProduct("search", "batch-compute", 2, []string{"r1", "r2"}, 4000); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitProduct("ads", "batch-compute", 1, []string{"r2"}, 2000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}
	wantHistory := len(ex.History())
	wantBalance, err := ex.Balance("search")
	if err != nil {
		t.Fatal(err)
	}

	// While the first process holds the directory, a second must refuse.
	if _, _, err := buildDemo(3, 6, 11, 8000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil); err == nil {
		t.Fatal("second marketd opened a locked journal dir")
	}

	if err := closer(); err != nil {
		t.Fatal(err)
	}

	ex2, closer2, err := buildDemo(3, 6, 11, 8000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer closer2()
	if got := len(ex2.History()); got != wantHistory {
		t.Errorf("recovered %d auctions, want %d", got, wantHistory)
	}
	if got := len(ex2.Teams()); got != len(demoTeams) {
		t.Errorf("recovered %d teams, want %d", got, len(demoTeams))
	}
	gotBalance, err := ex2.Balance("search")
	if err != nil {
		t.Fatal(err)
	}
	if gotBalance != wantBalance {
		t.Errorf("recovered balance %v, want %v", gotBalance, wantBalance)
	}
}

// TestJournaledFederatedDemoRecovers restarts the journaled federated
// demo: every region and the router recover to the same cut.
func TestJournaledFederatedDemoRecovers(t *testing.T) {
	dir := t.TempDir()
	fed, closer, err := buildFederatedDemo(2, 2, 6, 11, 8000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.SubmitProduct("search", "batch-compute", 1, []string{"us-r1", "eu-r1"}, 2000); err != nil {
		t.Fatal(err)
	}
	fed.Tick()
	wantStats := fed.Stats()
	wantOrders := len(fed.Orders())
	if err := closer(); err != nil {
		t.Fatal(err)
	}

	fed2, closer2, err := buildFederatedDemo(2, 2, 6, 11, 8000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer closer2()
	if got := fed2.Stats(); got != wantStats {
		t.Errorf("recovered stats %+v, want %+v", got, wantStats)
	}
	if got := len(fed2.Orders()); got != wantOrders {
		t.Errorf("recovered %d orders, want %d", got, wantOrders)
	}
}

// TestDemoOpsEndpoints proves the wired-up observability surface: a
// demo world built with a firehose serves live Prometheus text at
// /metrics, a health probe at /healthz, and the event feed at
// /api/events — the same wiring main() performs.
func TestDemoOpsEndpoints(t *testing.T) {
	fire := telemetry.NewFirehose()
	ex, _, err := buildDemo(2, 4, 7, 5000, core.EngineIncremental, core.PartitionAuto, 0, "", 1, 0, fire)
	if err != nil {
		t.Fatal(err)
	}
	health := telemetry.NewHealth(time.Now())
	health.RecordCheck(time.Now(), liveViolations(ex))
	s := webui.New(ex)
	s.SetHealth(health)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, err := ex.SubmitProduct("search", "batch-compute", 1, []string{"r1", "r2"}, 2000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	text := string(body[:n])
	for _, want := range []string{
		"market_orders_submitted_total 1",
		"market_auctions_total 1",
		"telemetry_events_published_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), `"healthy":true`) {
		t.Errorf("/healthz not healthy: %s", body[:n])
	}
}

// TestLockWaitRetries pins the -lock-wait restart race: opening a
// journal directory held by a live process fails fast with no wait
// budget, but a bounded retry loop picks the directory up as soon as
// the holder releases it.
func TestLockWaitRetries(t *testing.T) {
	dir := t.TempDir()
	_, closer, err := buildDemo(2, 4, 7, 1000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Without a wait budget the held lock is a hard startup failure.
	if _, _, err := buildDemo(2, 4, 7, 1000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 0, nil); !errors.Is(err, journal.ErrLocked) {
		t.Fatalf("locked open without wait = %v, want ErrLocked", err)
	}

	// Release the lock mid-wait; the retry loop must pick it up and
	// recover the previous run's books.
	go func() {
		time.Sleep(150 * time.Millisecond)
		closer()
	}()
	ex2, closer2, err := buildDemo(2, 4, 7, 1000, core.EngineIncremental, core.PartitionAuto, 0, dir, 1, 5*time.Second, nil)
	if err != nil {
		t.Fatalf("open with lock-wait: %v", err)
	}
	defer closer2()
	if got := len(ex2.Teams()); got != len(demoTeams) {
		t.Errorf("recovered %d teams, want %d", got, len(demoTeams))
	}
}
