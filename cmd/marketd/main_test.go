package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"clustermarket/internal/webui"
)

func TestBuildDemo(t *testing.T) {
	ex, err := buildDemo(4, 6, 42, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ex.Teams()); got != 5 {
		t.Fatalf("teams = %d", got)
	}
	if got := ex.Registry().Len(); got != 12 {
		t.Fatalf("pools = %d", got)
	}
	// The demo fleet must contain both hot and cold clusters so the
	// summary page shows contrast.
	rows, err := ex.Summary()
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold bool
	for _, r := range rows {
		if r.Utilization.CPU >= 0.7 {
			hot = true
		}
		if r.Utilization.CPU <= 0.4 {
			cold = true
		}
	}
	if !hot || !cold {
		t.Errorf("demo lacks load contrast: hot=%v cold=%v", hot, cold)
	}

	// The demo exchange serves the web UI end to end.
	ts := httptest.NewServer(webui.New(ex))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "Market summary") {
		t.Error("summary page missing title")
	}
}

func TestBuildDemoBadInputs(t *testing.T) {
	// Zero clusters yields an exchange error (no pools).
	if _, err := buildDemo(0, 4, 1, 100); err == nil {
		t.Error("zero clusters accepted")
	}
}
