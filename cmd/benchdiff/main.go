// Command benchdiff compares two `go test -bench` output files (the
// BENCH_*.json baselines the Makefile records) and prints a per-benchmark
// delta table: ns/op, allocs/op, and the change between them.
//
//	benchdiff -old BENCH_pr3.json -new BENCH_pr4.json
//
// By default benchdiff is informational and always exits 0 — the CI
// smoke mode, where single-iteration timings are too noisy to gate on.
// With -fail-over=N it exits 1 when any benchmark present in both files
// regressed its ns/op by more than N percent, for use on quiet hardware
// with real benchtimes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name    string
	NsPerOp float64
	// AllocsPerOp is −1 when the line carries no allocs/op column (the
	// benchmark was recorded without -benchmem or ReportAllocs).
	AllocsPerOp float64
}

// parseBench reads `go test -bench` output, keeping the last result for
// each benchmark name (re-runs appended to a baseline override earlier
// ones).
func parseBench(r *bufio.Scanner) (map[string]benchLine, []string, error) {
	out := make(map[string]benchLine)
	var order []string
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then metric pairs: VALUE UNIT.
		if len(fields) < 4 {
			continue
		}
		bl := benchLine{Name: fields[0], AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchdiff: bad value %q on line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				bl.NsPerOp = v
				ok = true
			case "allocs/op":
				bl.AllocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		if _, seen := out[bl.Name]; !seen {
			order = append(order, bl.Name)
		}
		out[bl.Name] = bl
	}
	return out, order, r.Err()
}

func parseFile(path string) (map[string]benchLine, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return parseBench(sc)
}

func fmtAllocs(a float64) string {
	if a < 0 {
		return "-"
	}
	return strconv.FormatFloat(a, 'f', -1, 64)
}

func main() {
	oldPath := flag.String("old", "", "baseline bench output file")
	newPath := flag.String("new", "", "candidate bench output file")
	failOver := flag.Float64("fail-over", 0,
		"exit 1 when any common benchmark's ns/op regressed by more than this percent (0 = informational smoke mode, never fail)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old OLD -new NEW [-fail-over PCT]")
		os.Exit(2)
	}
	oldB, _, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newB, newOrder, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("%-55s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs o→n")
	worst := 0.0
	for _, name := range newOrder {
		nb := newB[name]
		ob, both := oldB[name]
		if !both {
			fmt.Printf("%-55s %14s %14.0f %9s %12s\n", name, "(new)", nb.NsPerOp, "", fmtAllocs(nb.AllocsPerOp))
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		if delta > worst {
			worst = delta
		}
		fmt.Printf("%-55s %14.0f %14.0f %+8.1f%% %12s\n",
			name, ob.NsPerOp, nb.NsPerOp, delta, fmtAllocs(ob.AllocsPerOp)+"→"+fmtAllocs(nb.AllocsPerOp))
	}
	var removed []string
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-55s %14.0f %14s\n", name, oldB[name].NsPerOp, "(removed)")
	}
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst ns/op regression %.1f%% exceeds -fail-over %.1f%%\n", worst, *failOver)
		os.Exit(1)
	}
}
