package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clustermarket
BenchmarkAlpha         	       1	     11973 ns/op
BenchmarkBeta/sub      	      10	   2410856 ns/op	         0.9497 coldRatio	      96 B/op	       4 allocs/op
BenchmarkGamma-8       	     100	      9475 ns/op	         1.000 orders	    1192 B/op	      21 allocs/op
BenchmarkAlpha         	       1	     11000 ns/op
PASS
ok  	clustermarket	0.121s
`

func TestParseBench(t *testing.T) {
	got, order, err := parseBench(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(order) != 3 {
		t.Fatalf("parsed %d benchmarks (%v)", len(got), order)
	}
	// Re-recorded benchmarks keep the last value (appended baselines).
	if a := got["BenchmarkAlpha"]; a.NsPerOp != 11000 || a.AllocsPerOp != -1 {
		t.Errorf("alpha = %+v", a)
	}
	// Sub-benchmark names and extra ReportMetric columns parse through.
	if b := got["BenchmarkBeta/sub"]; b.NsPerOp != 2410856 || b.AllocsPerOp != 4 {
		t.Errorf("beta = %+v", b)
	}
	// -cpu suffixed names are kept distinct, and allocs/op survives the
	// interleaved custom metrics.
	if g := got["BenchmarkGamma-8"]; g.NsPerOp != 9475 || g.AllocsPerOp != 21 {
		t.Errorf("gamma = %+v", g)
	}
	if order[0] != "BenchmarkAlpha" || order[1] != "BenchmarkBeta/sub" {
		t.Errorf("order = %v", order)
	}
}

func TestParseBenchRejectsGarbageValues(t *testing.T) {
	_, _, err := parseBench(bufio.NewScanner(strings.NewReader("BenchmarkX 1 zap ns/op\n")))
	if err == nil {
		t.Fatal("garbage value accepted")
	}
}
