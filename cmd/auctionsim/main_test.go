package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustermarket/internal/resource"
)

const testBids = `
bid "seller" limit -5 { r1/cpu:-10 }
bid "rich" limit 30 { r1/cpu:10 }
bid "poor" limit 12 { r1/cpu:10 }
`

func writeBids(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bids.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSettlesAndVerifies(t *testing.T) {
	path := writeBids(t, testBids)
	if err := run(0.05, 0.2, 0.01, 0, 1.0, 10000, false, true, []string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithHistory(t *testing.T) {
	path := writeBids(t, testBids)
	if err := run(0.05, 0.2, 0.01, 0, 1.0, 10000, true, true, []string{path}); err != nil {
		t.Fatalf("run with history: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0.05, 0.2, 0.01, 0, 1.0, 100, false, true, []string{"a", "b"}); err == nil {
		t.Error("two args accepted")
	}
	if err := run(0.05, 0.2, 0.01, 0, 1.0, 100, false, true, []string{"/no/such/file"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeBids(t, "this is not a bid")
	if err := run(0.05, 0.2, 0.01, 0, 1.0, 100, false, true, []string{bad}); err == nil {
		t.Error("unparseable bids accepted")
	}
	// Non-convergent trader market under a tiny round budget: run warns
	// but must not error out before printing the partial result; the
	// SYSTEM check then fails because the partial state is infeasible (a
	// loser could still afford a bundle), or it may pass if all dropped —
	// just exercise the code path.
	traders := writeBids(t, `
bid "t1" limit 100000 { all { x/cpu:2 y/cpu:-1 } }
bid "t2" limit 100000 { all { x/cpu:-1 y/cpu:2 } }
`)
	_ = run(0.05, 0.2, 0.01, 0, 1.0, 50, false, false, []string{traders})
}

func TestFmtVec(t *testing.T) {
	got := fmtVec(resource.Vector{1, 2.5})
	if !strings.Contains(got, "1.000") || !strings.Contains(got, "2.500") {
		t.Errorf("fmtVec = %q", got)
	}
}
