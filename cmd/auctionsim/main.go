// Command auctionsim runs one ascending clock auction over bids written
// in the TBBL-style bidding language and prints the settlement: final
// uniform prices, winners, allocations, and payments.
//
// Usage:
//
//	auctionsim [-alpha 0.02] [-delta 0.25] [-epsilon 0] [-start 1.0]
//	           [-history] [-check] bids.txt
//
// The pool registry is inferred from the pools mentioned in the bids.
// With no file argument, bids are read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"clustermarket/internal/bidlang"
	"clustermarket/internal/chart"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

func main() {
	alpha := flag.Float64("alpha", 0.02, "price increment scale α")
	delta := flag.Float64("delta", 0.25, "per-round price cap δ")
	minStep := flag.Float64("minstep", 0.001, "minimum increment for pools with excess demand")
	epsilon := flag.Float64("epsilon", 0, "excess demand tolerance")
	startPrice := flag.Float64("start", 1.0, "uniform starting price for every pool")
	maxRounds := flag.Int("maxrounds", core.DefaultMaxRounds, "round limit")
	history := flag.Bool("history", false, "print per-round price history")
	check := flag.Bool("check", true, "verify the SYSTEM feasibility constraints")
	flag.Parse()

	if err := run(*alpha, *delta, *minStep, *epsilon, *startPrice, *maxRounds, *history, *check, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		os.Exit(1)
	}
}

func run(alpha, delta, minStep, epsilon, startPrice float64, maxRounds int, history, check bool, args []string) error {
	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("expected at most one bids file, got %d args", len(args))
	}
	if err != nil {
		return err
	}

	parsed, err := bidlang.ParseAll(string(src))
	if err != nil {
		return err
	}

	// Infer the registry from the pools mentioned across all bids.
	reg := resource.NewRegistry()
	for _, b := range parsed {
		for _, p := range b.Pools() {
			reg.Add(p)
		}
	}

	bids := make([]*core.Bid, 0, len(parsed))
	for _, b := range parsed {
		bundles, err := b.Flatten(reg)
		if err != nil {
			return err
		}
		bids = append(bids, &core.Bid{User: b.User, Bundles: bundles, Limit: b.Limit})
	}

	start := reg.Zero()
	for i := range start {
		start[i] = startPrice
	}
	a, err := core.NewAuction(reg, bids, core.Config{
		Start:         start,
		Policy:        core.Capped{Alpha: alpha, Delta: delta, MinStep: minStep},
		Epsilon:       epsilon,
		MaxRounds:     maxRounds,
		RecordHistory: history,
	})
	if err != nil {
		return err
	}
	buyers, sellers, traders := a.Classes()
	fmt.Printf("%d bids (%d buyers, %d sellers, %d traders) over %d pools\n",
		len(bids), buyers, sellers, traders, reg.Len())
	if traders > 0 {
		fmt.Println("note: traders present; convergence is not guaranteed (Section III.C.3)")
	}

	res, runErr := a.Run()
	if runErr != nil && res == nil {
		return runErr
	}
	if runErr != nil {
		fmt.Printf("WARNING: %v (stopping after %d rounds)\n", runErr, res.Rounds)
	} else {
		fmt.Printf("converged in %d rounds\n", res.Rounds)
	}

	if history {
		for _, h := range res.History {
			fmt.Printf("  t=%-4d active=%-3d prices=%s\n", h.T, h.ActiveBidders, fmtVec(h.Prices))
		}
	}

	// Final prices table.
	idx := make([]int, reg.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return reg.Pool(idx[a]).String() < reg.Pool(idx[b]).String() })
	var rows [][]string
	for _, i := range idx {
		rows = append(rows, []string{reg.Pool(i).String(), fmt.Sprintf("%.4f", res.Prices[i])})
	}
	fmt.Println()
	fmt.Print(chart.Table("Final uniform prices", []string{"Pool", "Price"}, rows))

	// Settlement table.
	rows = nil
	for i, b := range bids {
		status := "lost"
		alloc, pay := "-", "-"
		if res.IsWinner(i) {
			status = "won"
			alloc = reg.Format(res.Allocations[i])
			pay = fmt.Sprintf("%.4f", res.Payments[i])
		}
		rows = append(rows, []string{b.User, b.Class().String(), status, pay, alloc})
	}
	fmt.Println()
	fmt.Print(chart.Table("Settlement", []string{"User", "Class", "Status", "Payment", "Allocation"}, rows))

	if check {
		if v := core.CheckSystem(bids, res, 1e-6); len(v) != 0 {
			fmt.Println()
			for _, violation := range v {
				fmt.Println("VIOLATION:", violation.Error())
			}
			return fmt.Errorf("%d SYSTEM constraint violations", len(v))
		}
		fmt.Println("\nSYSTEM constraints (1)-(6) verified.")
	}
	return nil
}

func fmtVec(v resource.Vector) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", x)
	}
	return out + "]"
}
