package main

import (
	"os"
	"testing"
)

func TestRunAllScenarios(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-scenario", "all", "-backend", "both", "-epochs", "4", "-v"}, devnull, devnull); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
}

func TestRunSingleScenario(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-scenario", "trader-storm", "-backend", "exchange", "-seed", "7"}, devnull, devnull); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
}

func TestUsageErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cases := [][]string{
		{"-scenario", "no-such"},
		{"-backend", "no-such"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		if code := run(args, devnull, devnull); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCrashRecoverySoak(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	args := []string{"-scenario", "crash-recovery", "-backend", "both", "-seed", "42",
		"-journal-dir", t.TempDir(), "-crash-epoch", "4"}
	if code := run(args, devnull, devnull); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
}

func TestChaosSoak(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// The scripted fault scenarios under a seeded chaos schedule: both
	// chaos legs must fingerprint-match each other and the invariant
	// kernel must hold under fire, on both backends.
	for _, sc := range []string{"disk-fault", "partition-storm"} {
		args := []string{"-scenario", sc, "-backend", "both", "-seed", "42",
			"-chaos", "-chaos-seed", "7", "-epochs", "4", "-journal-dir", t.TempDir()}
		if code := run(args, devnull, devnull); code != exitOK {
			t.Fatalf("%s: exit code = %d, want %d", sc, code, exitOK)
		}
	}
}

func TestChaosRequiresJournalDir(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-chaos"}, devnull, devnull); code != exitUsage {
		t.Fatalf("exit code = %d, want %d", code, exitUsage)
	}
}

func TestCrashEpochRequiresJournalDir(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-crash-epoch", "3"}, devnull, devnull); code != exitUsage {
		t.Fatalf("exit code = %d, want %d", code, exitUsage)
	}
}

func TestTelemetrySoak(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// Telemetry on top of the journaled crash run: the stream
	// reconstruction must match for the in-memory baseline, the journaled
	// rerun, and the crash-recovered rerun alike.
	args := []string{"-scenario", "crash-recovery", "-backend", "both", "-seed", "42",
		"-telemetry", "-journal-dir", t.TempDir(), "-crash-epoch", "3"}
	if code := run(args, devnull, devnull); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
}
