// Command marketsim soaks the market through the scenario catalog: a
// deterministic, seed-reproducible multi-epoch run of one (or every)
// named scenario against the single-exchange and/or federated backend,
// with the shared invariant kernel checked after every epoch.
//
//	marketsim -scenario all -backend both -seed 42 -epochs 10 -regions 3
//
// With -journal-dir set, each run is repeated on a journaled backend and
// its fingerprint must match the in-memory baseline bit for bit; with
// -crash-epoch N the journaled run is additionally killed without
// flushing before epoch N's settlement wave and resurrected from its
// WAL — the crash-recovery soak. Any fingerprint divergence exits 3.
//
// With -telemetry, every run carries a firehose subscriber and the
// report is reconstructed from the event stream alone: the
// reconstruction's fingerprint must equal the run's, proving the
// telemetry pipeline is lossless and complete (the telemetry soak). A
// stream divergence also exits 3.
//
// With -chaos (requires -journal-dir), each scenario/backend pair is
// additionally run twice under the same seeded-random fault schedule
// (-chaos-seed): disk faults under the journal, region partitions and
// gossip stalls in the federation, and a deliberately stalled telemetry
// subscriber. The two chaos runs must fingerprint-match each other —
// randomized fault injection must not break determinism — and every
// invariant must hold throughout (the chaos soak).
//
// Exit codes:
//
//	0 — every run completed with every invariant intact
//	1 — usage error or engine failure
//	2 — an invariant was violated (the soak's reason to exist)
//	3 — a journaled or crash-recovered run diverged from its baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"clustermarket/internal/fault"
	"clustermarket/internal/scenario"
	"clustermarket/internal/telemetry"
)

const (
	exitOK        = 0
	exitUsage     = 1
	exitInvariant = 2
	exitDiverged  = 3
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("marketsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("scenario", "all",
		"scenario to run: one of "+strings.Join(scenario.Names(), ", ")+", or 'all'")
	backend := fs.String("backend", "both", "market backend: exchange, federation, or both")
	seed := fs.Int64("seed", 42, "seed; same seed, scenario, and backend reproduce the run bit-identically")
	epochs := fs.Int("epochs", 0, "epochs per run (0 uses each scenario's default)")
	regions := fs.Int("regions", 0, "regions in the world (0 uses the default)")
	teams := fs.Int("teams", 0, "bidder population size (0 uses the default)")
	verbose := fs.Bool("v", false, "print the per-epoch table for every run")
	journalDir := fs.String("journal-dir", "",
		"repeat each run on a journaled backend under this directory and require fingerprint equality with the in-memory baseline")
	fsyncEvery := fs.Int("fsync-every", 1, "journal group-commit window for the journaled runs")
	snapshotEvery := fs.Int("snapshot-every", 3, "journal snapshot cadence for the journaled runs")
	crashEpoch := fs.Int("crash-epoch", 0,
		"kill-and-resurrect the journaled run before this epoch's settlement wave (requires -journal-dir)")
	telem := fs.Bool("telemetry", false,
		"attach a firehose subscriber to every run and require the report to be reconstructible from the event stream alone")
	chaos := fs.Bool("chaos", false,
		"run each scenario/backend pair twice under a seeded-random fault schedule and require the two runs to fingerprint-match (requires -journal-dir)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the -chaos fault schedule")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *crashEpoch > 0 && *journalDir == "" {
		fmt.Fprintln(stderr, "marketsim: -crash-epoch requires -journal-dir")
		return exitUsage
	}
	if *chaos && *journalDir == "" {
		fmt.Fprintln(stderr, "marketsim: -chaos requires -journal-dir (disk faults inject under the journal)")
		return exitUsage
	}

	var scenarios []*scenario.Scenario
	if *name == "all" {
		scenarios = scenario.Catalog()
	} else {
		sc, err := scenario.Lookup(*name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitUsage
		}
		scenarios = []*scenario.Scenario{sc}
	}
	var kinds []string
	switch *backend {
	case "both":
		kinds = []string{"exchange", "federation"}
	case "exchange", "federation":
		kinds = []string{*backend}
	default:
		fmt.Fprintf(stderr, "marketsim: unknown backend %q (want exchange, federation, or both)\n", *backend)
		return exitUsage
	}

	cfg := scenario.Config{Seed: *seed, Epochs: *epochs, Regions: *regions, Teams: *teams}
	violations, diverged := 0, 0
	for _, sc := range scenarios {
		for _, kind := range kinds {
			rep, rec, err := runOne(sc, kind, cfg, *telem)
			if err != nil {
				fmt.Fprintf(stderr, "marketsim: %s/%s: %v\n", sc.Name, kind, err)
				return exitUsage
			}
			printReport(stdout, rep, *verbose)
			for _, v := range rep.Violations {
				fmt.Fprintf(stderr, "marketsim: INVARIANT VIOLATED: %s/%s: %s\n", sc.Name, kind, v)
			}
			violations += len(rep.Violations)
			diverged += checkStream(stdout, stderr, sc.Name, kind, "", rep, rec)

			if *journalDir == "" {
				continue
			}
			// The durable rerun: same scenario, same seed, journaled — and
			// optionally power-cycled mid-run. Its fingerprint must match
			// the in-memory baseline bit for bit. The rerun arms an
			// injector, so a scenario with a scripted fault schedule
			// (disk-fault, partition-storm) actually injects it here —
			// against the fault-free baseline, fingerprint equality IS the
			// faults-heal contract.
			jcfg := cfg
			jcfg.JournalDir = filepath.Join(*journalDir, sc.Name+"-"+kind)
			jcfg.FsyncEvery = *fsyncEvery
			jcfg.SnapshotEvery = *snapshotEvery
			jcfg.CrashEpoch = *crashEpoch
			jcfg.Injector = fault.New()
			jrep, jrec, err := runOne(sc, kind, jcfg, *telem)
			if err != nil {
				fmt.Fprintf(stderr, "marketsim: %s/%s (journaled): %v\n", sc.Name, kind, err)
				return exitUsage
			}
			for _, v := range jrep.Violations {
				fmt.Fprintf(stderr, "marketsim: INVARIANT VIOLATED: %s/%s (journaled): %s\n", sc.Name, kind, v)
			}
			violations += len(jrep.Violations)
			label := "journaled"
			if *crashEpoch > 0 {
				label = fmt.Sprintf("journaled, crashed at epoch %d", *crashEpoch)
			}
			diverged += checkStream(stdout, stderr, sc.Name, kind, label, jrep, jrec)
			if jrep.Fingerprint() != rep.Fingerprint() {
				fmt.Fprintf(stderr, "marketsim: DIVERGED: %s/%s (%s): fingerprint %s, baseline %s\n",
					sc.Name, kind, label, jrep.Fingerprint()[:16], rep.Fingerprint()[:16])
				diverged++
			} else {
				fmt.Fprintf(stdout, "%-18s %-10s %s run matches baseline fingerprint %s\n",
					sc.Name, kind, label, rep.Fingerprint()[:16])
			}

			if *chaos {
				v, d, err := runChaosPair(stdout, stderr, sc, kind, cfg, *journalDir, *fsyncEvery, *snapshotEvery, *chaosSeed)
				if err != nil {
					fmt.Fprintf(stderr, "marketsim: %s/%s (chaos): %v\n", sc.Name, kind, err)
					return exitUsage
				}
				violations += v
				diverged += d
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(stderr, "marketsim: %d invariant violation(s)\n", violations)
		return exitInvariant
	}
	if diverged > 0 {
		fmt.Fprintf(stderr, "marketsim: %d run(s) diverged from baseline\n", diverged)
		return exitDiverged
	}
	return exitOK
}

// runOne builds the backend for cfg, drives the scenario, and releases
// the backend's journals. With telem set it additionally attaches a
// firehose subscriber for the duration of the run and returns the
// report reconstructed from the event stream alone; the subscriber is
// drained concurrently, so the run never drops an event however long it
// is.
func runOne(sc *scenario.Scenario, kind string, cfg scenario.Config, telem bool) (*scenario.Report, *scenario.Report, error) {
	var sub *telemetry.Subscription
	var events []telemetry.Event
	drained := make(chan struct{})
	if telem {
		fire := telemetry.NewFirehose()
		sub = fire.Subscribe(1 << 12)
		cfg.Telemetry = fire
		go func() {
			defer close(drained)
			for ev := range sub.C {
				events = append(events, ev)
			}
		}()
	}
	b, err := scenario.NewBackend(kind, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer b.Close()
	rep, err := scenario.Run(sc, b, cfg)
	if err != nil || sub == nil {
		return rep, nil, err
	}
	sub.Close()
	<-drained
	if n := sub.Dropped(); n > 0 {
		return rep, nil, fmt.Errorf("telemetry subscriber dropped %d events", n)
	}
	rec, err := scenario.ReconstructReport(sc.Name, kind, cfg.Seed, events)
	if err != nil {
		return rep, nil, fmt.Errorf("reconstructing report from event stream: %w", err)
	}
	return rep, rec, nil
}

// runChaosPair runs the scenario twice under the same seeded-random
// fault schedule: each leg gets a fresh chaos injector, a fresh
// journal subdirectory, and a deliberately never-drained telemetry
// subscriber (the stall fault — publishers must stay non-blocking).
// The two legs must fingerprint-match each other: a chaos schedule is
// allowed to change outcomes relative to the fault-free run (breakers
// open, quotes go stale), but it must do so deterministically. Returns
// the invariant-violation and divergence counts.
func runChaosPair(stdout, stderr *os.File, sc *scenario.Scenario, kind string, cfg scenario.Config, journalDir string, fsyncEvery, snapshotEvery int, chaosSeed int64) (violations, diverged int, err error) {
	var reps [2]*scenario.Report
	for i := 0; i < 2; i++ {
		ccfg := cfg
		ccfg.JournalDir = filepath.Join(journalDir, fmt.Sprintf("%s-%s-chaos%d", sc.Name, kind, i))
		ccfg.FsyncEvery = fsyncEvery
		ccfg.SnapshotEvery = snapshotEvery
		ccfg.Injector = fault.NewChaos(chaosSeed)
		fire := telemetry.NewFirehose()
		ccfg.Telemetry = fire
		ccfg.Injector.AttachTelemetry(fire)
		stall := fault.Stall(fire)
		b, berr := scenario.NewBackend(kind, ccfg)
		if berr != nil {
			stall.Close()
			return violations, diverged, berr
		}
		rep, rerr := scenario.Run(sc, b, ccfg)
		b.Close()
		stall.Close()
		if rerr != nil {
			return violations, diverged, rerr
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(stderr, "marketsim: INVARIANT VIOLATED: %s/%s (chaos leg %d): %s\n", sc.Name, kind, i, v)
		}
		violations += len(rep.Violations)
		reps[i] = rep
	}
	if reps[0].Fingerprint() != reps[1].Fingerprint() {
		fmt.Fprintf(stderr, "marketsim: DIVERGED: %s/%s (chaos): leg fingerprints %s vs %s\n",
			sc.Name, kind, reps[0].Fingerprint()[:16], reps[1].Fingerprint()[:16])
		return violations, diverged + 1, nil
	}
	fmt.Fprintf(stdout, "%-18s %-10s chaos runs match fingerprint %s\n", sc.Name, kind, reps[0].Fingerprint()[:16])
	return violations, diverged, nil
}

// checkStream compares a run's fingerprint with its stream
// reconstruction (when one was made), reporting a divergence the same
// way the journal soak does. It returns the number of divergences (0 or
// 1).
func checkStream(stdout, stderr *os.File, name, kind, label string, rep, rec *scenario.Report) int {
	if rec == nil {
		return 0
	}
	what := "stream reconstruction"
	if label != "" {
		what = fmt.Sprintf("stream reconstruction (%s)", label)
	}
	if rec.Fingerprint() != rep.Fingerprint() {
		fmt.Fprintf(stderr, "marketsim: DIVERGED: %s/%s: %s fingerprint %s, run %s\n",
			name, kind, what, rec.Fingerprint()[:16], rep.Fingerprint()[:16])
		return 1
	}
	fmt.Fprintf(stdout, "%-18s %-10s %s matches run fingerprint %s\n", name, kind, what, rep.Fingerprint()[:16])
	return 0
}

func printReport(w *os.File, rep *scenario.Report, verbose bool) {
	var sub, auc, conv, settled, unsettled int
	for _, s := range rep.Epochs {
		sub += s.Submitted
		auc += s.Auctions
		conv += s.Converged
		settled += s.Settled
		unsettled += s.Unsettled
	}
	fmt.Fprintf(w, "%-18s %-10s seed=%-6d epochs=%-3d orders=%-5d auctions=%d/%d converged settled=%-5d unsettled=%-3d fingerprint=%s\n",
		rep.Scenario, rep.Backend, rep.Seed, len(rep.Epochs), sub, conv, auc, settled, unsettled, rep.Fingerprint()[:16])
	if !verbose {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "  epoch\tteams\tsubmitted\trejected\tstorm\tauctions\tconverged\tsettled\tmedian-premium\topen\tdark\tviolations")
	for _, s := range rep.Epochs {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%d\t%s\t%d\n",
			s.Epoch, s.Teams, s.Submitted, s.Rejected, s.StormBids,
			s.Auctions, s.Converged, s.Settled, s.MedianPremium,
			s.OpenOrders, strings.Join(s.Dark, ","), s.Violations)
	}
	tw.Flush()
}
