// Command marketlint is the repo's static-analysis gate: a
// multichecker over the four contract analyzers (maporder, replaypure,
// allocfree, lockdiscipline — see internal/analysis and DESIGN.md
// "Static analysis & contracts").
//
// It speaks the `go vet -vettool` unit protocol, so the same binary
// serves two invocations:
//
//	marketlint ./...            # standalone: wraps `go vet -vettool=self`
//	go vet -vettool=$(which marketlint) ./...
//
// Exit status: 0 clean, 1 driver error, nonzero on findings (go vet
// reports the findings and fails the build).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"clustermarket/internal/analysis"
	"clustermarket/internal/analysis/allocfree"
	"clustermarket/internal/analysis/lockdiscipline"
	"clustermarket/internal/analysis/maporder"
	"clustermarket/internal/analysis/replaypure"
)

// analyzers is the marketlint suite.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	replaypure.Analyzer,
	allocfree.Analyzer,
	lockdiscipline.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The three vettool protocol entry points, in the order cmd/go
	// exercises them: -V=full (tool identity for the build cache),
	// -flags (supported analyzer flags; marketlint passes none through),
	// then one invocation per package unit with a .cfg path.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.VetUnit(args[0], analyzers))
		}
	}
	if len(args) >= 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}

	// Standalone mode: delegate loading, caching, and scheduling to the
	// go tool by re-invoking ourselves as its vettool.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "marketlint: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "marketlint: %v\n", err)
		os.Exit(1)
	}
}

// printVersion implements the -V=full contract: cmd/go hashes the
// reported identity into its build cache key, so the identity must
// change whenever the tool's behavior might — hashing our own binary
// delivers exactly that.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

func usage() {
	fmt.Println("marketlint [packages]  — run the clustermarket contract analyzers (default ./...)")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Annotations (see DESIGN.md \"Static analysis & contracts\"):")
	fmt.Println("  //marketlint:orderfree <reason>        this map-range loop is order-insensitive")
	fmt.Println("  //marketlint:allocfree                 pinned zero-allocation hot path (doc comment)")
	fmt.Println("  //marketlint:allow <analyzer> <reason> suppress one analyzer at this statement")
}
