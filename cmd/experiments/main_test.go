package main

import (
	"bytes"
	"strings"
	"testing"

	"clustermarket/internal/sim"
)

func smallCfg() sim.Config {
	return sim.Config{
		Seed:               5,
		Clusters:           6,
		MachinesPerCluster: 8,
		Teams:              20,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	cases := []struct {
		what string
		want string
	}{
		{"fig2", "Figure 2"},
		{"fig6", "Figure 6"},
		{"fig7", "Figure 7"},
		{"table1", "Table I"},
		{"baseline", "Allocation mechanism comparison"},
		{"migration", "Demand migration"},
		{"clockprog", "Clock progression"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run(&buf, c.what, smallCfg(), 2); err != nil {
			t.Fatalf("%s: %v", c.what, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s output missing %q", c.what, c.want)
		}
	}
}

func TestRunScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	var buf bytes.Buffer
	if err := run(&buf, "scaling", smallCfg(), 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linear fit") {
		t.Error("scaling output missing fit")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", smallCfg(), 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", smallCfg(), 2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FIG2", "FIG6", "FIG7", "TABLE I", "SCALING", "BASELINE", "MIGRATION", "CLOCK"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("all output missing %q", want)
		}
	}
}
