// Command experiments regenerates every table and figure from the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	experiments -run all
//	experiments -run fig2
//	experiments -run fig6 -clusters 34 -teams 100
//	experiments -run fig7 -auctions 3
//	experiments -run table1 -auctions 3
//	experiments -run scaling
//	experiments -run baseline
//	experiments -run migration -auctions 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clustermarket/internal/sim"
)

func main() {
	runWhat := flag.String("run", "all", "experiment: all|fig2|fig6|fig7|table1|scaling|baseline|migration|clockprog")
	seed := flag.Int64("seed", 2009, "random seed")
	clusters := flag.Int("clusters", 34, "clusters in the scenario world")
	machines := flag.Int("machines", 40, "machines per cluster")
	teams := flag.Int("teams", 100, "engineering teams")
	auctions := flag.Int("auctions", 3, "sequential auctions for fig7/table1/migration")
	parallel := flag.Bool("parallel", false, "parallel proxy evaluation")
	flag.Parse()

	cfg := sim.Config{
		Seed:               *seed,
		Clusters:           *clusters,
		MachinesPerCluster: *machines,
		Teams:              *teams,
		Parallel:           *parallel,
	}
	if err := run(os.Stdout, *runWhat, cfg, *auctions); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, what string, cfg sim.Config, auctions int) error {
	all := what == "all"
	matched := false

	if all || what == "fig2" {
		matched = true
		fmt.Fprintln(w, "== FIG2 ==")
		sim.RenderFig2(w, sim.Fig2(100))
		fmt.Fprintln(w)
	}
	if all || what == "fig6" {
		matched = true
		fmt.Fprintln(w, "== FIG6 ==")
		d, err := sim.Fig6(cfg)
		if err != nil {
			return err
		}
		sim.RenderFig6(w, d)
		hot, cold := d.CongestionPriceCorrelation(0.75, 0.4)
		fmt.Fprintf(w, "mean ratio: congested pools %.3f, idle pools %.3f\n\n", hot, cold)
	}
	if all || what == "fig7" {
		matched = true
		fmt.Fprintln(w, "== FIG7 ==")
		d, err := sim.Fig7(cfg, auctions)
		if err != nil {
			return err
		}
		sim.RenderFig7(w, d)
		fmt.Fprintln(w)
	}
	if all || what == "table1" {
		matched = true
		fmt.Fprintln(w, "== TABLE I ==")
		rows, err := sim.Table1(cfg, auctions)
		if err != nil {
			return err
		}
		sim.RenderTable1(w, rows)
		fmt.Fprintln(w)
	}
	if all || what == "scaling" {
		matched = true
		fmt.Fprintln(w, "== SCALING (Section III.C.4) ==")
		d, err := sim.Scaling(cfg.Seed, cfg.Parallel)
		if err != nil {
			return err
		}
		sim.RenderScaling(w, d)
		fmt.Fprintln(w)
	}
	if all || what == "baseline" {
		matched = true
		fmt.Fprintln(w, "== BASELINE COMPARISON ==")
		rows, err := sim.Baseline(cfg)
		if err != nil {
			return err
		}
		sim.RenderBaseline(w, rows)
		fmt.Fprintln(w)
	}
	if all || what == "migration" {
		matched = true
		fmt.Fprintln(w, "== MIGRATION (Section V.B) ==")
		rows, err := sim.Migration(cfg, auctions)
		if err != nil {
			return err
		}
		sim.RenderMigration(w, rows)
		fmt.Fprintln(w)
	}
	if all || what == "clockprog" {
		matched = true
		fmt.Fprintln(w, "== CLOCK PROGRESSION (Figure 1 in action) ==")
		d, err := sim.ClockProgression(cfg, 3)
		if err != nil {
			return err
		}
		sim.RenderClockProgression(w, d)
		fmt.Fprintln(w)
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
