// Command tracegen emits a synthetic bid population in the bidding
// language, suitable for piping into auctionsim:
//
//	tracegen -seed 7 -teams 40 -clusters 8 | auctionsim
//
// Utilization is synthesized per cluster (a configurable fraction of
// clusters is congested) so the population contains both bids and offers.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
	"clustermarket/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	teams := flag.Int("teams", 40, "number of teams")
	clusters := flag.Int("clusters", 8, "number of clusters")
	hot := flag.Float64("hot", 0.35, "fraction of congested clusters")
	rounds := flag.Int("rounds", 1, "bid rounds to generate (later rounds are more sophisticated)")
	flag.Parse()

	if err := run(os.Stdout, *seed, *teams, *clusters, *hot, *rounds); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, teams, clusters int, hot float64, rounds int) error {
	names := make([]string, clusters)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i+1)
	}
	reg := resource.NewStandardRegistry(names...)
	gen, err := trace.New(trace.Config{Seed: seed, Clusters: names, Teams: teams}, reg)
	if err != nil {
		return err
	}

	// Synthesize utilization: the first `hot` fraction of clusters is
	// congested.
	rng := rand.New(rand.NewSource(seed + 100))
	util := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		if float64(i/3)/float64(clusters) < hot {
			util[i] = 0.8 + rng.Float64()*0.15
		} else {
			util[i] = 0.15 + rng.Float64()*0.3
		}
	}
	ref := reg.Zero()
	for i := range ref {
		ref[i] = 1.0
	}

	for round := 0; round < rounds; round++ {
		bids, err := gen.Generate(trace.RoundInput{Utilization: util, ReferencePrices: ref})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# round %d: %d bids\n", round+1, len(bids))
		for _, gb := range bids {
			fmt.Fprint(w, renderBid(reg, gb.Bid))
		}
	}
	return nil
}

// renderBid prints a core bid in the bidding-language syntax.
func renderBid(reg *resource.Registry, b *core.Bid) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bid %q limit %g {\n", b.User, b.Limit)
	if len(b.Bundles) > 1 {
		sb.WriteString("  oneof {\n")
	}
	for _, bundle := range b.Bundles {
		indent := "  "
		if len(b.Bundles) > 1 {
			indent = "    "
		}
		sb.WriteString(indent + "all {")
		for i, q := range bundle {
			if q == 0 {
				continue
			}
			p := reg.Pool(i)
			fmt.Fprintf(&sb, " %s/%s:%g", p.Cluster, strings.ToLower(p.Dim.String()), q)
		}
		sb.WriteString(" }\n")
	}
	if len(b.Bundles) > 1 {
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
