package main

import (
	"strings"
	"testing"

	"clustermarket/internal/bidlang"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

func TestRenderBidRoundTripsThroughParser(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2")
	bid := &core.Bid{
		User:  "team-x/buy",
		Limit: 123.5,
		Bundles: []resource.Vector{
			{10, 20, 1, 0, 0, 0},
			{0, 0, 0, 10, 20, 1},
		},
	}
	text := renderBid(reg, bid)
	parsed, err := bidlang.Parse(text)
	if err != nil {
		t.Fatalf("rendered bid does not parse: %v\n%s", err, text)
	}
	if parsed.User != bid.User || parsed.Limit != bid.Limit {
		t.Errorf("header lost: %+v", parsed)
	}
	bundles, err := parsed.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	for i := range bundles {
		if !bundles[i].Equal(bid.Bundles[i], 0) {
			t.Errorf("bundle %d differs: %v vs %v", i, bundles[i], bid.Bundles[i])
		}
	}
}

func TestRenderBidSingleBundleHasNoOneof(t *testing.T) {
	reg := resource.NewStandardRegistry("r1")
	bid := &core.Bid{User: "s", Limit: -5, Bundles: []resource.Vector{{-3, 0, 0}}}
	text := renderBid(reg, bid)
	if strings.Contains(text, "oneof") {
		t.Errorf("single-bundle bid rendered with oneof:\n%s", text)
	}
	if _, err := bidlang.Parse(text); err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
}

func TestRunProducesParseableOutput(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 3, 12, 4, 0.5, 2); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Strip comment lines and reparse everything.
	var lines []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "#") {
			lines = append(lines, line)
		}
	}
	bids, err := bidlang.ParseAll(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("generated output does not parse: %v", err)
	}
	if len(bids) < 6 {
		t.Errorf("suspiciously few bids: %d", len(bids))
	}
}
