GO ?= go

.PHONY: all build test race vet bench bench-baseline

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark; doubles as a smoke check of the
# reproduced paper results (shape metrics are reported alongside timing).
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./...

# Record the current benchmark output as a baseline for comparison.
# Parametrized so re-running for a new PR cannot silently clobber an
# earlier baseline: make bench-baseline BENCH_OUT=BENCH_prN.json
BENCH_OUT ?= BENCH_pr3.json
bench-baseline:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./... | tee $(BENCH_OUT)
