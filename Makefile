GO ?= go

.PHONY: all build test race vet bench bench-baseline bench-compare

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark; doubles as a smoke check of the
# reproduced paper results (shape metrics are reported alongside timing).
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./...

# Record the current benchmark output as a baseline for comparison:
# one pass over the full suite, then the sharded-intake scaling sweep
# (BenchmarkParallelSubmit across worker counts) appended to the same
# file. Parametrized so re-running for a new PR cannot silently clobber
# an earlier baseline: make bench-baseline BENCH_OUT=BENCH_prN.json
BENCH_OUT ?= BENCH_pr4.json
bench-baseline:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./... | tee $(BENCH_OUT)
	$(GO) test -run 'xxx' -bench 'ParallelSubmit|ConcurrentSubmit' -benchtime 2000x -cpu 1,4,8 . | tee -a $(BENCH_OUT)

# Compare two recorded baselines (default: the previous PR's against
# this PR's). Informational by default — single-iteration CI timings are
# noise — pass BENCH_FAIL_OVER=N to fail on a >N% ns/op regression.
BENCH_OLD ?= BENCH_pr3.json
BENCH_NEW ?= BENCH_pr4.json
BENCH_FAIL_OVER ?= 0
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(BENCH_OLD) -new $(BENCH_NEW) -fail-over $(BENCH_FAIL_OVER)
