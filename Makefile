GO ?= go

.PHONY: all build test race vet bench bench-baseline

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark; doubles as a smoke check of the
# reproduced paper results (shape metrics are reported alongside timing).
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./...

# Record the current benchmark output as the baseline for comparison.
bench-baseline:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./... | tee BENCH_seed.json
