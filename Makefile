# clustermarket build entry points. `make help` lists the targets;
# `make all` is the local pre-push gate (lint + build + test), and the
# remaining targets are the CI legs (race, soaks, coverage, fuzz,
# bench gate) runnable individually.
GO ?= go

.PHONY: all build test race vet lint vulncheck help \
	bench bench-baseline bench-compare \
	soak soak-race soak-crash soak-telemetry soak-chaos cover cover-update fuzz bench-ci

all: lint build test ## Lint, build, and test: the local pre-push gate

help: ## List targets
	@awk 'BEGIN {FS = ":.*##"} /^[a-zA-Z_-]+:.*##/ {printf "  %-16s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

build: ## Compile every package
	$(GO) build ./...

test: ## Run the full test suite
	$(GO) test ./...

race: ## Run the full test suite under the race detector
	$(GO) test -race ./...

vet: ## Run go vet
	$(GO) vet ./...

# Static analysis: go vet, then the repo's own marketlint analyzers
# (maporder, replaypure, allocfree, lockdiscipline — see DESIGN.md,
# "Static analysis & contracts") driven through vet's -vettool unit
# protocol. staticcheck joins when installed; the CI lint job pins and
# caches it, while a bare dev container skips it rather than failing.
MARKETLINT := bin/marketlint
lint: vet ## go vet + marketlint (+ staticcheck when installed)
	$(GO) build -o $(MARKETLINT) ./cmd/marketlint
	$(GO) vet -vettool=$(MARKETLINT) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (the CI lint job runs it)"; \
	fi

vulncheck: ## govulncheck against the checked-in ignore list
	./scripts/vulncheck.sh

# One pass over every benchmark; doubles as a smoke check of the
# reproduced paper results (shape metrics are reported alongside timing).
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./...

# Record the current benchmark output as a baseline for comparison:
# one pass over the full suite, then the sharded-intake scaling sweep
# (BenchmarkParallelSubmit across worker counts) appended to the same
# file. Parametrized so re-running for a new PR cannot silently clobber
# an earlier baseline: make bench-baseline BENCH_OUT=BENCH_prN.json
BENCH_OUT ?= BENCH_pr10.json
bench-baseline:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./... | tee $(BENCH_OUT)
	$(GO) test -run 'xxx' -bench 'ParallelSubmit|ConcurrentSubmit' -benchtime 2000x -cpu 1,4,8 . | tee -a $(BENCH_OUT)

# Compare two recorded baselines (default: the previous PR's against
# this PR's). Informational by default — single-iteration CI timings are
# noise — pass BENCH_FAIL_OVER=N to fail on a >N% ns/op regression.
BENCH_OLD ?= BENCH_pr9.json
BENCH_NEW ?= BENCH_pr10.json
BENCH_FAIL_OVER ?= 0
bench-compare:
	$(GO) run ./cmd/benchdiff -old $(BENCH_OLD) -new $(BENCH_NEW) -fail-over $(BENCH_FAIL_OVER)

# Regression gate for CI: record a fresh single-pass baseline on the CI
# machine and compare it against the last committed baseline with a
# tolerant threshold. Single-iteration timings swing wildly, so only a
# blowup (accidental quadratic, lost fast path) trips the gate — real
# perf work still uses bench-baseline on quiet hardware.
BENCH_GATE_BASE ?= BENCH_pr10.json
BENCH_GATE_OVER ?= 400
bench-ci:
	$(MAKE) bench-baseline BENCH_OUT=BENCH_ci.json
	$(GO) run ./cmd/benchdiff -old $(BENCH_GATE_BASE) -new BENCH_ci.json -fail-over $(BENCH_GATE_OVER)

# Scenario soak: every catalog scenario on both backends, with the
# shared invariant kernel checked after every epoch. Exit code 2 means
# an invariant broke. soak-race runs the same under the race detector —
# the CI smoke configuration.
SOAK_FLAGS ?= -scenario all -backend both -seed 42
soak:
	$(GO) run ./cmd/marketsim $(SOAK_FLAGS)
soak-race:
	$(GO) run -race ./cmd/marketsim $(SOAK_FLAGS) -epochs 6

# Crash-recovery soak: the crash-recovery scenario on both backends,
# journaled, killed without flushing before epoch 4's settlement wave,
# and resurrected from the WAL — exit code 3 if the recovered run's
# fingerprint diverges from the in-memory baseline by even one bit.
SOAK_CRASH_FLAGS ?= -scenario crash-recovery -backend both -seed 42 -crash-epoch 4
soak-crash:
	$(GO) run -race ./cmd/marketsim $(SOAK_CRASH_FLAGS) -journal-dir "$$(mktemp -d)"

# Chaos soak: every catalog scenario on both backends, journaled, each
# with two extra legs under a seeded-random fault schedule (disk faults,
# region partitions, gossip loss) — exit code 2 if any invariant breaks
# under fire, exit code 3 if the two same-seed chaos legs are not
# bit-identical. The scripted disk-fault and partition-storm scenarios
# additionally verify faults-heal fingerprint identity against the
# fault-free baseline on every soak run.
SOAK_CHAOS_FLAGS ?= -scenario all -backend both -seed 42 -chaos -chaos-seed 7
soak-chaos:
	$(GO) run -race ./cmd/marketsim $(SOAK_CHAOS_FLAGS) -epochs 6 -journal-dir "$$(mktemp -d)"

# Telemetry soak: every catalog scenario on both backends with a
# firehose subscriber attached, requiring each run's report to be
# reconstructible bit-identically from the event stream alone — exit
# code 3 if the stream reconstruction's fingerprint diverges.
SOAK_TELEMETRY_FLAGS ?= -scenario all -backend both -seed 42 -telemetry
soak-telemetry:
	$(GO) run -race ./cmd/marketsim $(SOAK_TELEMETRY_FLAGS) -epochs 6

# Coverage with a checked-in floor (COVERAGE_FLOOR) and per-package
# deltas against COVERAGE_baseline.txt. cover-update rewrites the
# baseline after intentional changes.
cover:
	./scripts/cover.sh
cover-update:
	./scripts/cover.sh -update

# Native fuzz smoke: each target briefly, as in CI. Longer local runs:
# go test -fuzz FuzzParse ./internal/bidlang
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run 'xxx' ./internal/bidlang
	$(GO) test -fuzz 'FuzzQueryParams$$' -fuzztime $(FUZZTIME) -run 'xxx' ./internal/webui
	$(GO) test -fuzz FuzzEventsQueryParams -fuzztime $(FUZZTIME) -run 'xxx' ./internal/webui
