// Package clustermarket is a Go implementation of the market-based
// resource provisioning system from "Using a Market Economy to Provision
// Compute Resources Across Planet-wide Clusters" (Stokely, Winget, Keyes,
// Grimes, Yolken — IPPS/IPDPS 2009).
//
// The package re-exports the stable public surface of the internal
// packages:
//
//   - the ascending clock auction (Section III): Bid, Auction,
//     AuctionConfig, Result, the increment policies, and feasibility
//     checking against the SYSTEM constraints;
//   - congestion-weighted reserve pricing (Section IV): the weighting
//     curves and Pricer;
//   - the cluster substrate: Fleet, Cluster, Machine, schedulers, quotas;
//   - the trading platform (Section V): Exchange, product catalog, orders,
//     billing ledger, market summary, and the web front end;
//   - the TBBL-style bidding language (Section II) for textual bids.
//
// The minimal flow is:
//
//	fleet := clustermarket.NewFleet()
//	...add clusters and machines...
//	ex, _ := clustermarket.NewExchange(fleet, clustermarket.ExchangeConfig{})
//	ex.OpenAccount("team-a")
//	ex.SubmitProduct("team-a", "batch-compute", 10, []string{"r1", "r2"}, 400)
//	record, result, _ := ex.RunAuction()
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping between the paper's sections and the implementation.
package clustermarket

import (
	"fmt"
	"time"

	"clustermarket/internal/bidlang"
	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/optimize"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/scenario"
	"clustermarket/internal/telemetry"
	"clustermarket/internal/webui"
)

// Resource model (Section II).
type (
	// Dimension is a resource type (CPU, RAM, Disk, Network).
	Dimension = resource.Dimension
	// Pool is one divisible resource pool: a (cluster, dimension) pair.
	Pool = resource.Pool
	// Registry assigns dense indices to the pools of one market.
	Registry = resource.Registry
	// Vector is an R-component quantity or price vector.
	Vector = resource.Vector
)

// Resource dimensions.
const (
	CPU     = resource.CPU
	RAM     = resource.RAM
	Disk    = resource.Disk
	Network = resource.Network
)

// NewRegistry returns a registry over the given pools.
func NewRegistry(pools ...Pool) *Registry { return resource.NewRegistry(pools...) }

// NewStandardRegistry crosses the clusters with CPU, RAM, and Disk.
func NewStandardRegistry(clusters ...string) *Registry {
	return resource.NewStandardRegistry(clusters...)
}

// Clock auction (Section III).
type (
	// Bid is a sealed bid B_u = {Q_u, π_u}.
	Bid = core.Bid
	// Auction runs the ascending clock of Algorithm 1.
	Auction = core.Auction
	// AuctionConfig parameterizes a clock auction run.
	AuctionConfig = core.Config
	// AuctionResult is the settled outcome.
	AuctionResult = core.Result
	// IncrementPolicy is the price update rule g(x, p). The contract is
	// allocation-free: implementations write the step into a
	// caller-provided vector (StepInto); use PolicyStep for the
	// allocating convenience form.
	IncrementPolicy = core.IncrementPolicy
	// SystemViolation is one violated SYSTEM constraint.
	SystemViolation = core.SystemViolation
	// AuctionEngine selects the clock's demand-revelation strategy.
	AuctionEngine = core.Engine
	// PartitionMode selects the sub-market decomposition policy: whether
	// the clock partitions the book into independent bidder–pool
	// components and clears them concurrently (bit-identical to the
	// merged run) or always runs the merged single clock.
	PartitionMode = core.PartitionMode
)

// Clock engines. EngineIncremental (the default) re-evaluates only the
// bidders touching a pool whose price moved — O(affected bidders) per
// round; EngineDense is the dense reference path. Results are
// bit-identical either way.
const (
	EngineIncremental = core.EngineIncremental
	EngineDense       = core.EngineDense
)

// Partition modes. PartitionAuto (the default) decomposes each run into
// connected components of the bidder–pool graph; PartitionOff pins the
// merged single-clock path. Results are bit-identical either way.
const (
	PartitionAuto = core.PartitionAuto
	PartitionOff  = core.PartitionOff
)

// Increment policies from Section III.C.2.
type (
	// Additive is g = α·z⁺.
	Additive = core.Additive
	// Capped is the paper's Equation (3): g = min(α·z⁺, δe).
	Capped = core.Capped
	// Proportional caps steps at a fraction of the current price.
	Proportional = core.Proportional
	// CostNormalized scales steps by each pool's base cost.
	CostNormalized = core.CostNormalized
)

// ErrNoConvergence reports a clock auction that hit its round limit.
var ErrNoConvergence = core.ErrNoConvergence

// NewAuction validates bids and builds an auction.
func NewAuction(reg *Registry, bids []*Bid, cfg AuctionConfig) (*Auction, error) {
	return core.NewAuction(reg, bids, cfg)
}

// CheckSystem verifies an outcome against the SYSTEM constraints (1)–(6)
// of Section III.B.
func CheckSystem(bids []*Bid, res *AuctionResult, eps float64) []SystemViolation {
	return core.CheckSystem(bids, res, eps)
}

// Premium computes γ_u (Equation 5, Section V.C).
func Premium(limit, payment float64) float64 { return core.Premium(limit, payment) }

// PolicyStep applies an increment policy into a freshly allocated step
// vector — the convenience form of the allocation-free StepInto
// contract.
func PolicyStep(pol IncrementPolicy, z, p Vector) Vector { return core.PolicyStep(pol, z, p) }

// Reserve pricing (Section IV).
type (
	// WeightFn maps utilization to a price multiple.
	WeightFn = reserve.WeightFn
	// ReservePricer computes p̃ = φ(ψ)·c.
	ReservePricer = reserve.Pricer
)

// The Figure 2 weighting curves.
var (
	ExpSteep   = reserve.ExpSteep
	ExpMild    = reserve.ExpMild
	Hyperbolic = reserve.Hyperbolic
)

// NewReservePricer builds a pricer with the given weighting curve.
func NewReservePricer(fn WeightFn) *ReservePricer { return reserve.NewPricer(fn) }

// Cluster substrate.
type (
	// Fleet is the planet-wide set of clusters plus the quota ledger.
	Fleet = cluster.Fleet
	// Cluster is a named pool of machines.
	Cluster = cluster.Cluster
	// Machine is one host.
	Machine = cluster.Machine
	// Usage is a quantity across CPU/RAM/Disk.
	Usage = cluster.Usage
	// Task is one schedulable unit.
	Task = cluster.Task
	// Scheduler places tasks on machines.
	Scheduler = cluster.Scheduler
)

// NewFleet returns an empty fleet.
func NewFleet() *Fleet { return cluster.NewFleet() }

// NewCluster returns an empty cluster with the given scheduler (nil
// selects first-fit).
func NewCluster(name string, s Scheduler) *Cluster { return cluster.New(name, s) }

// Trading platform (Section V).
type (
	// Exchange is the trading platform. All methods are safe for
	// concurrent use; the order and account books are striped
	// (ExchangeConfig.Shards, default DefaultExchangeShards) so order
	// entry scales across CPUs instead of serializing on one book lock.
	// See MarketLoop for epoch-batched settlement.
	Exchange = market.Exchange
	// ExchangeConfig parameterizes it.
	ExchangeConfig = market.Config
	// Order is one submitted bid or offer.
	Order = market.Order
	// AuctionRecord summarizes one settled market auction.
	AuctionRecord = market.AuctionRecord
	// ClusterSummary is one market-summary row (Figure 3).
	ClusterSummary = market.ClusterSummary
	// Product is a catalog entry for two-step bid entry (Figure 4).
	Product = market.Product
	// MarketLoop settles the order book in one clock auction per epoch.
	MarketLoop = market.Loop
	// MarketLoopStats counts the loop's ticks, auctions, and failures.
	MarketLoopStats = market.LoopStats
)

// ErrNoOpenOrders reports an auction attempted over an empty book.
var ErrNoOpenOrders = market.ErrNoOpenOrders

// DefaultExchangeShards is the book stripe count an Exchange uses when
// ExchangeConfig.Shards is zero.
const DefaultExchangeShards = market.DefaultShards

// NewExchange wires an exchange to a fleet.
func NewExchange(f *Fleet, cfg ExchangeConfig) (*Exchange, error) {
	return market.NewExchange(f, cfg)
}

// NewMarketLoop builds an epoch-batched auction loop over the exchange:
// orders accumulate during each epoch and settle in one clock auction
// per tick. Run it with Loop.Run(ctx) or use Exchange.Serve.
func NewMarketLoop(ex *Exchange, epoch time.Duration) (*MarketLoop, error) {
	return market.NewLoop(ex, epoch)
}

// NewWebUI returns the trading platform's HTTP handler (Figures 3–5).
func NewWebUI(ex *Exchange) *webui.Server { return webui.New(ex) }

// Federated multi-region market (beyond the paper; see DESIGN.md).
type (
	// Region is one autonomous regional market: an Exchange over its own
	// fleet, namespaced by region.
	Region = federation.Region
	// Federation fronts N regions behind one API, routing bids to their
	// home exchange and splitting cross-region XOR bids into per-region
	// legs ordered cheapest-first by the gossip price board.
	Federation = federation.Federation
	// FedOrder is one federated order with its routing legs; at most one
	// leg ever wins.
	FedOrder = federation.FedOrder
	// RegionQuote is one region's price-board entry.
	RegionQuote = federation.Quote
	// FederationStats counts the router's outcomes.
	FederationStats = federation.Stats
)

// NewRegion wires a regional exchange to its fleet.
func NewRegion(name string, f *Fleet, cfg ExchangeConfig) (*Region, error) {
	return federation.NewRegion(name, f, cfg)
}

// NewFederation assembles regions into one federated market. Run it with
// Federation.Serve(ctx, epoch): every region settles its own epoch
// batches concurrently.
func NewFederation(regions ...*Region) (*Federation, error) {
	return federation.NewFederation(regions...)
}

// NewFederatedWebUI returns the federation's global HTTP front end: the
// planet-wide market summary with per-region drill-downs under
// /region/<name>/.
func NewFederatedWebUI(f *Federation) *webui.FedServer { return webui.NewFederated(f) }

// Durable event log and crash recovery (beyond the paper; see the
// "Event log & durability" section of DESIGN.md). An Exchange built with
// ExchangeConfig.Journal set writes every state change to an append-only
// WAL before applying it, and periodically snapshots; after a crash,
// OpenJournal returns the surviving snapshot-plus-tail and
// RecoverExchange deterministically replays it into a fresh exchange.
type (
	// Journal is the append-only write-ahead log: CRC-framed records in
	// segment files, group-commit fsync, snapshot-and-truncate.
	Journal = journal.Journal
	// JournalOptions tunes a journal, chiefly the group-commit window
	// (FsyncEvery: how many appended batches may share one fsync).
	JournalOptions = journal.Options
	// JournalRecovery is everything that survived on disk: the newest
	// intact snapshot and the record tail appended after it.
	JournalRecovery = journal.Recovery
)

// OpenJournal opens (or creates) the journal in dir, locking it against
// concurrent opens, and scans what survived. A torn tail — a record cut
// mid-write by the crash — is truncated, never replayed.
func OpenJournal(dir string, opts JournalOptions) (*Journal, *JournalRecovery, error) {
	return journal.Open(dir, opts)
}

// RecoverExchange rebuilds an exchange from a journal recovery: snapshot
// restore, tail replay, then the full invariant check — a recovery that
// would serve a corrupt book (unbalanced ledger, negative balance,
// over-committed capacity) fails instead of starting. The fleet must be
// rebuilt by the caller exactly as the crashed process built it; fleet
// construction is configuration, not market state, so it is not
// journaled. cfg.Journal should be the freshly reopened journal so the
// recovered exchange continues appending where the crashed one stopped.
func RecoverExchange(f *Fleet, cfg ExchangeConfig, rec *JournalRecovery) (*Exchange, error) {
	ex, err := market.Recover(f, cfg, rec)
	if err != nil {
		return nil, err
	}
	if vs := invariant.CheckExchange(ex); len(vs) > 0 {
		return nil, fmt.Errorf("clustermarket: recovered exchange violates %d invariant(s); first: %s", len(vs), vs[0])
	}
	return ex, nil
}

// RecoverRegion is RecoverExchange for one federated region: the
// recovered exchange keeps the region's product namespace. Each region
// journals its own book; recover every region, then reassemble the
// federation with NewFederation and restore the router's own journal.
func RecoverRegion(name string, f *Fleet, cfg ExchangeConfig, rec *JournalRecovery) (*Region, error) {
	r, err := federation.RecoverRegion(name, f, cfg, rec)
	if err != nil {
		return nil, err
	}
	if vs := invariant.CheckExchange(r.Exchange()); len(vs) > 0 {
		return nil, fmt.Errorf("clustermarket: recovered region %q violates %d invariant(s); first: %s", name, len(vs), vs[0])
	}
	return r, nil
}

// Explicitly-optimizing allocation (Section III.C.4 / VI future work).
type (
	// Objective selects what the optimizing allocator maximizes.
	Objective = optimize.Objective
	// OptimizedResult is an optimizer outcome settled at reserve prices.
	OptimizedResult = optimize.Result
)

// Optimizer objectives from Section III.B.
const (
	TotalSurplus    = optimize.TotalSurplus
	TotalTradeValue = optimize.TotalTradeValue
)

// OptimizeGreedy computes a welfare-oriented allocation directly, without
// price discovery. See the package documentation for why the paper's
// system uses the clock auction instead.
func OptimizeGreedy(reg *Registry, bids []*Bid, reserve Vector, obj Objective) (*OptimizedResult, error) {
	return optimize.Greedy(reg, bids, reserve, obj)
}

// OptimizeExact computes the welfare-optimal allocation by branch and
// bound; limited to small instances.
func OptimizeExact(reg *Registry, bids []*Bid, reserve Vector, obj Objective) (*OptimizedResult, error) {
	return optimize.Exact(reg, bids, reserve, obj)
}

// EvaluateWelfare scores any allocation (for instance a clock auction's)
// under an optimizer objective.
func EvaluateWelfare(bids []*Bid, allocations []Vector, reserve Vector, obj Objective) (float64, error) {
	return optimize.EvaluateWelfare(bids, allocations, reserve, obj)
}

// UnfairnessReport counts the SYSTEM fairness constraints (3)–(5) an
// optimized outcome violates at the given uniform prices.
func UnfairnessReport(bids []*Bid, res *OptimizedResult, prices Vector) int {
	return optimize.UnfairnessReport(bids, res, prices)
}

// Streaming telemetry (beyond the paper; the "Telemetry & firehose"
// section of DESIGN.md). An exchange built with
// ExchangeConfig.Telemetry set — and a federation after
// AttachTelemetry — publishes every state-change event to a bounded,
// non-blocking firehose; the web front ends additionally serve a
// Prometheus exposition at /metrics, a health probe at /healthz, and a
// live SSE feed at /api/events.
type (
	// Firehose is the bounded pub/sub event bus: publishers never block,
	// slow subscribers lose oldest-first, and with no subscriber a
	// publish is two atomic loads.
	Firehose = telemetry.Firehose
	// TelemetryEvent is one published event: a process-wide sequence
	// number, the publishing subsystem ("market", "fed", "scenario"), the
	// event kind, and the typed payload.
	TelemetryEvent = telemetry.Event
	// TelemetrySubscription is one subscriber's bounded event queue.
	TelemetrySubscription = telemetry.Subscription
	// Health is the shared state behind a /healthz probe.
	Health = telemetry.Health
	// HealthSnapshot is one consistent probe read, JSON-ready.
	HealthSnapshot = telemetry.HealthSnapshot
	// Exposition accumulates one Prometheus text-format scrape.
	Exposition = telemetry.Exposition
	// ExchangeMetrics is the exchange's monotonic counter snapshot.
	ExchangeMetrics = market.Metrics
)

// NewFirehose returns an empty firehose ready for Publish and
// Subscribe.
func NewFirehose() *Firehose { return telemetry.NewFirehose() }

// NewHealth returns a health record anchored at the given start time.
func NewHealth(start time.Time) *Health { return telemetry.NewHealth(start) }

// Scenario engine & invariant kernel (beyond the paper; DESIGN.md).

type (
	// ScenarioConfig parameterizes a scenario run (seed, topology, epochs).
	ScenarioConfig = scenario.Config
	// ScenarioReport is a completed run: per-epoch summaries plus any
	// invariant violations; Fingerprint() is bit-stable per seed.
	ScenarioReport = scenario.Report
	// MarketScenario is one scripted multi-epoch event timeline.
	MarketScenario = scenario.Scenario
	// MarketBackend abstracts the market under test (single exchange or
	// federation) behind one topology.
	MarketBackend = scenario.Backend
	// InvariantViolation is one broken market invariant.
	InvariantViolation = invariant.Violation
)

// Scenarios returns the named scenario catalog (diurnal, flash-crowd,
// churn, region-outage, adaptive-learning, trader-storm).
func Scenarios() []*MarketScenario { return scenario.Catalog() }

// LookupScenario returns one catalog scenario by name.
func LookupScenario(name string) (*MarketScenario, error) { return scenario.Lookup(name) }

// NewScenarioBackend builds the "exchange" or "federation" backend for
// the config. Use the same config with RunScenario.
func NewScenarioBackend(kind string, cfg ScenarioConfig) (MarketBackend, error) {
	return scenario.NewBackend(kind, cfg)
}

// RunScenario drives a backend through a scenario: seed-reproducible
// epochs, with the shared invariant kernel checked after every one.
func RunScenario(sc *MarketScenario, b MarketBackend, cfg ScenarioConfig) (*ScenarioReport, error) {
	return scenario.Run(sc, b, cfg)
}

// ReconstructScenarioReport rebuilds a scenario report purely from the
// firehose event stream of a run — the losslessness proof for the
// telemetry pipeline: its Fingerprint must equal the live run's.
func ReconstructScenarioReport(scenarioName, backendKind string, seed int64, events []TelemetryEvent) (*ScenarioReport, error) {
	return scenario.ReconstructReport(scenarioName, backendKind, seed, events)
}

// CheckMarketInvariants runs the shared invariant kernel over a
// quiescent exchange: balanced double-entry ledger, non-negative
// balances, commitments matching open exposure, per-auction wins within
// capacity, clearing prices at or above reserve, consistent counters.
func CheckMarketInvariants(ex *Exchange) []InvariantViolation { return invariant.CheckExchange(ex) }

// CheckFederationInvariants runs the kernel over every region plus the
// cross-region XOR routing invariants.
func CheckFederationInvariants(f *Federation) []InvariantViolation {
	return invariant.CheckFederation(f)
}

// Bidding language (Section II).

// ParseBid reads one bid in the TBBL-style text syntax, e.g.
//
//	bid "team" limit 120 { oneof { all { r1/cpu:40 r1/ram:96 } all { r2/cpu:40 r2/ram:96 } } }
func ParseBid(src string) (*bidlang.Bid, error) { return bidlang.Parse(src) }

// ParseBids reads a sequence of bids.
func ParseBids(src string) ([]*bidlang.Bid, error) { return bidlang.ParseAll(src) }

// CompileBid flattens a parsed bidlang bid into a clock-auction bid
// against the registry.
func CompileBid(b *bidlang.Bid, reg *Registry) (*Bid, error) {
	bundles, err := b.Flatten(reg)
	if err != nil {
		return nil, err
	}
	return &Bid{User: b.User, Bundles: bundles, Limit: b.Limit}, nil
}
