module clustermarket

go 1.22
